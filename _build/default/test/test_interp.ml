(* Direct tests of the reference interpreter — the oracle of all the
   differential suites needs its own ground truth: hand-computed results
   for FLWOR tuple semantics, order by with empty keys, EBV edges,
   construction/copy semantics, and built-in corner cases. *)

module Value = Algebra.Value

let mk_store () =
  let st = Xmldb.Doc_store.create () in
  let _ =
    Xmldb.Xml_parser.load_document st ~uri:"t.xml"
      "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"
  in
  st

let run st q = Interp.Interpreter.run st q
let run_s st q = Interp.Interpreter.run_to_string st q

let check st msg expected q = Alcotest.(check string) msg expected (run_s st q)

let expect_dynamic st q =
  match run st q with
  | exception Basis.Err.Dynamic_error _ -> ()
  | _ -> Alcotest.failf "expected dynamic error: %s" q

(* ------------------------------------------------------------------ flwor *)

let test_flwor_tuples () =
  let st = mk_store () in
  check st "nested fors are a cross product" "11 21 12 22"
    "for $x in (1,2) for $y in (10,20) return $y + $x";
  check st "dependent inner domain" "1 1 2"
    "for $x in (1,2) for $y in (1 to $x) return $y";
  check st "where filters tuples" "2 4"
    "for $x in 1 to 4 where $x mod 2 = 0 return $x";
  check st "let is per tuple" "2 4 6"
    "for $x in 1 to 3 let $y := 2 * $x return $y";
  check st "positional variable" "a1 b2"
    {|for $x at $p in ("a","b") return concat($x, $p)|}

let test_order_by () =
  let st = mk_store () in
  check st "ascending" "1 2 3" "for $x in (2,3,1) order by $x return $x";
  check st "descending" "3 2 1"
    "for $x in (2,3,1) order by $x descending return $x";
  (* "descending" binds to the second key only: sort y ascending, then x
     descending within equal y *)
  check st "secondary key" "21 11 22 12"
    "for $x in (1,2), $y in (1,2) order by $y, $x descending return 10 * $x + $y";
  (* empty keys (the key expression, not the binding, is empty for x=2):
     least puts them first ascending, greatest last *)
  check st "empty least" "2 1 3"
    {|for $x in (1,2,3) order by (if ($x = 2) then () else $x) empty least return $x|};
  check st "empty greatest" "1 3 2"
    {|for $x in (1,2,3) order by (if ($x = 2) then () else $x) empty greatest return $x|};
  (* empty greatest + descending: greatest first *)
  check st "empty greatest descending" "2 3 1"
    {|for $x in (1,2,3) order by (if ($x = 2) then () else $x) descending empty greatest return $x|};
  (* stability: equal keys keep tuple order *)
  check st "stable ties" "a b c"
    {|for $x in ("a","b","c") stable order by 1 return $x|}

(* -------------------------------------------------------------------- ebv *)

let test_ebv () =
  let st = mk_store () in
  check st "empty is false" "false" "boolean(())";
  check st "node is true" "true" "boolean(doc(\"t.xml\")/a)";
  check st "many nodes are true" "true" "boolean(doc(\"t.xml\")//c)";
  check st "zero is false" "false" "boolean(0)";
  check st "NaN is false" "false" "boolean(number(\"oops\"))";
  check st "empty string is false" "false" "boolean(\"\")";
  check st "nonempty string is true" "true" "boolean(\"false\")";
  expect_dynamic st "boolean((1,2))"

(* ----------------------------------------------------------- construction *)

let test_construction () =
  let st = mk_store () in
  check st "copied content loses identity" "false"
    {|let $b := doc("t.xml")//b let $w := <w>{ $b }</w>
      return exactly-one($w/b) is exactly-one($b)|};
  Alcotest.(check string) "copy is deep" "<w><b><c/><d/></b></w>"
    (run_s st {|<w>{ doc("t.xml")//b }</w>|});
  Alcotest.(check string) "attribute from expression" {|<p a="1 2 3"/>|}
    (run_s st {|<p a="{ 1 to 3 }"/>|});
  Alcotest.(check string) "adjacent atomics get one space" "<s>1 2</s>"
    (run_s st "<s>{ 1, 2 }</s>");
  Alcotest.(check string) "separate enclosed exprs do not" "<s>12</s>"
    (run_s st "<s>{ 1 }{ 2 }</s>");
  Alcotest.(check string) "literal text merges without spaces" "<s>a1b</s>"
    (run_s st "<s>a{ 1 }b</s>");
  (* constructed trees come after all existing nodes in document order *)
  check st "constructed follows existing" "true"
    {|exactly-one(doc("t.xml")/a) << <z/>|}

let test_node_identity () =
  let st = mk_store () in
  check st "self identity" "true"
    {|let $c := (doc("t.xml")//c)[1] return $c is $c|};
  check st "distinct constructions differ" "false"
    {|<q/> is <q/>|};
  check st "union dedups by identity" "2"
    {|count(doc("t.xml")//c | doc("t.xml")//c)|}

(* -------------------------------------------------------------- built-ins *)

let test_builtin_corners () =
  let st = mk_store () in
  check st "max with NaN is NaN" "NaN" {|max((1, number("oops"), 99))|};
  check st "avg of empty is empty" "" "avg(())";
  check st "sum of empty is 0" "0" "sum(())";
  check st "count of atomics" "3" "count((1,1,1))";
  check st "subsequence fractional start" "2 3"
    "subsequence((1,2,3), 1.7)";
  check st "subsequence negative start" "1"
    "subsequence((1,2,3), -1, 3)";
  check st "distinct-values keeps first occurrences" "3 1 2"
    "distinct-values((3,1,3,2,1))";
  check st "string of element is text concat" "xy"
    {|string(exactly-one(doc("t.xml")/a/e))|};
  check st "data of attribute" "1" {|data(doc("t.xml")/a/e/@k)|};
  check st "name of attribute" "k" {|name(doc("t.xml")/a/e/@k)|};
  check st "number of unparsable is NaN" "NaN" {|number("12,5")|};
  check st "round half up" "3" "round(2.5)";
  (* XQuery rounds .5 toward positive infinity *)
  check st "round negative half" "-2" "round(-2.5)"

let test_deep_equal_and_friends () =
  let st = mk_store () in
  check st "deep-equal across copies" "true"
    {|deep-equal(doc("t.xml")//b, <b><c/><d/></b>)|};
  check st "deep-equal observes attributes" "false"
    {|deep-equal(<x a="1"/>, <x a="2"/>)|};
  check st "insert-before start" "x a b"
    {|string-join(insert-before(("a","b"), 1, "x"), " ")|};
  check st "remove out of range is identity" "a b"
    {|string-join(remove(("a","b"), 5), " ")|}

(* ----------------------------------------------------------------- quant *)

let test_quantifiers () =
  let st = mk_store () in
  check st "some over empty" "false" "some $x in () satisfies true()";
  check st "every over empty" "true" "every $x in () satisfies false()";
  check st "existential comparison" "true" "(1,2,3) = (3,4)";
  check st "existential inequality both ways" "true" "(1,2) != (1,2)";
  check st "no witness" "false" "(1,2) = (3,4)"

(* ------------------------------------------------------------------ main *)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "interp"
    [ ( "flwor",
        [ t "tuple stream" test_flwor_tuples;
          t "order by" test_order_by ] );
      ( "semantics",
        [ t "effective boolean value" test_ebv;
          t "construction" test_construction;
          t "node identity" test_node_identity;
          t "quantifiers" test_quantifiers ] );
      ( "builtins",
        [ t "corner cases" test_builtin_corners;
          t "deep-equal / sequences" test_deep_equal_and_friends ] );
    ]
