(* Tests for the XQuery frontend: lexing/parsing of every supported
   construct, operator precedence, error reporting, and the normalization
   rules of the paper's Section 2.2 (unordered-wrapper insertion, ordering
   mode propagation, predicate lowering, function inlining). *)

open Xquery

let parse s = Parser.parse_expression s
let parse_q s = Parser.parse_query s

let norm ?mode s = Normalize.normalize_expr ?mode (parse s)

let core_str c = Core_ast.to_string c

let contains ~sub s = Astring.String.is_infix ~affix:sub s

let check_contains msg sub c =
  if not (contains ~sub (core_str c)) then
    Alcotest.failf "%s: %S not found in %s" msg sub (core_str c)

let check_not_contains msg sub c =
  if contains ~sub (core_str c) then
    Alcotest.failf "%s: %S unexpectedly found in %s" msg sub (core_str c)

let expect_syntax_error s =
  match parse_q s with
  | exception Parser.Syntax_error (_, pos) ->
    (* position info must point into (or just past) the query text *)
    if pos < 0 || pos > String.length s then
      Alcotest.failf "syntax error offset %d out of range for %S" pos s
  | _ -> Alcotest.failf "expected syntax error for %s" s

let expect_static_error s =
  match Normalize.normalize_query (parse_q s) with
  | exception Basis.Err.Static_error _ -> ()
  | _ -> Alcotest.failf "expected static error for %s" s

(* -------------------------------------------------------------- parsing *)

let test_parse_literals () =
  (match parse "42" with Ast.E_int 42 -> () | _ -> Alcotest.fail "int");
  (match parse "3.25" with Ast.E_dec f when f = 3.25 -> () | _ -> Alcotest.fail "dec");
  (match parse "1e3" with Ast.E_dec f when f = 1000.0 -> () | _ -> Alcotest.fail "exp");
  (match parse {|"a""b"|} with Ast.E_str "a\"b" -> () | _ -> Alcotest.fail "str quote");
  (match parse {|'it''s'|} with Ast.E_str "it's" -> () | _ -> Alcotest.fail "apos");
  (match parse {|"&lt;&amp;"|} with Ast.E_str "<&" -> () | _ -> Alcotest.fail "entities")

let test_parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  (match parse "1 + 2 * 3" with
   | Ast.E_arith (Ast.Add, Ast.E_int 1, Ast.E_arith (Ast.Mul, _, _)) -> ()
   | _ -> Alcotest.fail "arith precedence");
  (* comparison binds looser than range *)
  (match parse "1 to 3 = 2" with
   | Ast.E_general_cmp (Ast.Geq, Ast.E_range _, Ast.E_int 2) -> ()
   | _ -> Alcotest.fail "range vs cmp");
  (* or looser than and *)
  (match parse "1 or 2 and 3" with
   | Ast.E_or (Ast.E_int 1, Ast.E_and _) -> ()
   | _ -> Alcotest.fail "or/and");
  (* union binds tighter than + *)
  (match parse "$a/b | $a/c" with
   | Ast.E_union _ -> ()
   | _ -> Alcotest.fail "union")

let test_parse_path () =
  (match parse "$a//b" with
   | Ast.E_slash
       (Ast.E_slash (Ast.E_var "a",
                     Ast.E_axis_step (Xmldb.Axis.Descendant_or_self,
                                      Ast.Nt_kind_node, [])),
        Ast.E_axis_step (Xmldb.Axis.Child, Ast.Nt_name _, [])) -> ()
   | _ -> Alcotest.fail "// desugars via descendant-or-self (footnote 1)");
  (match parse "$a/@id" with
   | Ast.E_slash (_, Ast.E_axis_step (Xmldb.Axis.Attribute, _, [])) -> ()
   | _ -> Alcotest.fail "@ abbreviation");
  (match parse "$a/.." with
   | Ast.E_slash (_, Ast.E_axis_step (Xmldb.Axis.Parent, _, [])) -> ()
   | _ -> Alcotest.fail ".. abbreviation");
  (match parse "$a/ancestor-or-self::*" with
   | Ast.E_slash (_, Ast.E_axis_step (Xmldb.Axis.Ancestor_or_self, Ast.Nt_wild, [])) -> ()
   | _ -> Alcotest.fail "explicit axis");
  (match parse "$a/text()" with
   | Ast.E_slash (_, Ast.E_axis_step (Xmldb.Axis.Child, Ast.Nt_kind_text, [])) -> ()
   | _ -> Alcotest.fail "text() kind test");
  (match parse "$a/b[2][last()]" with
   | Ast.E_slash (_, Ast.E_axis_step (_, _, [ Ast.E_int 2; Ast.E_call ("last", []) ])) -> ()
   | _ -> Alcotest.fail "stacked predicates")

let test_parse_flwor () =
  match parse "for $x at $i in (1,2), $y in (3,4) let $z := $x where $z > 1 order by $y descending return $z" with
  | Ast.E_flwor f ->
    (match f.Ast.clauses with
     | [ Ast.For_clause { var = "x"; pos_var = Some "i"; _ };
         Ast.For_clause { var = "y"; pos_var = None; _ };
         Ast.Let_clause { var = "z"; _ };
         Ast.Where_clause _ ] -> ()
     | _ -> Alcotest.fail "clauses");
    (match f.Ast.order_by with
     | [ { Ast.dir = Ast.Descending; _ } ] -> ()
     | _ -> Alcotest.fail "order by")
  | _ -> Alcotest.fail "flwor"

let test_parse_constructors () =
  (match parse {|<a x="1">t</a>|} with
   | Ast.E_elem_direct (q, [ (aq, [ Ast.Ap_text "1" ]) ], [ Ast.C_text "t" ]) ->
     Alcotest.(check string) "tag" "a" (Xmldb.Qname.to_string q);
     Alcotest.(check string) "attr" "x" (Xmldb.Qname.to_string aq)
   | _ -> Alcotest.fail "direct elem");
  (match parse {|<a>{{literal}}</a>|} with
   | Ast.E_elem_direct (_, [], [ Ast.C_text "{literal}" ]) -> ()
   | _ -> Alcotest.fail "brace escapes");
  (match parse "element foo { 1 }" with
   | Ast.E_elem_computed (Ast.Name_const _, Ast.E_int 1) -> ()
   | _ -> Alcotest.fail "computed elem");
  (match parse "attribute { $n } { 1 }" with
   | Ast.E_attr_computed (Ast.Name_computed _, _) -> ()
   | _ -> Alcotest.fail "computed attr with computed name");
  (match parse "unordered { 1 }" with
   | Ast.E_unordered (Ast.E_int 1) -> ()
   | _ -> Alcotest.fail "unordered block");
  (* "for" with no $ is an element name, not a keyword *)
  (match parse "<for/>" with
   | Ast.E_elem_direct _ -> ()
   | _ -> Alcotest.fail "for as tag name")

let test_parse_prolog () =
  let q = parse_q
      "declare ordering unordered; declare function local:f($x as xs:integer?) as xs:integer { $x + 1 }; local:f(1)"
  in
  Alcotest.(check bool) "ordering" true (q.Ast.prolog.Ast.ordering = Some Ast.Unordered);
  (match q.Ast.prolog.Ast.functions with
   | [ { Ast.fname = "local:f"; params = [ "x" ]; _ } ] -> ()
   | _ -> Alcotest.fail "function decl")

let test_parse_comments () =
  (match parse "1 (: comment (: nested :) done :) + 2" with
   | Ast.E_arith (Ast.Add, _, _) -> ()
   | _ -> Alcotest.fail "nested comments")

let test_parse_types () =
  (match parse "5 instance of xs:integer+" with
   | Ast.E_instance_of (Ast.E_int 5, Ast.St (Ast.It_atomic "integer", Ast.Occ_plus)) -> ()
   | _ -> Alcotest.fail "instance of");
  (match parse "$x treat as node()*" with
   | Ast.E_treat_as (_, Ast.St (Ast.It_node, Ast.Occ_star)) -> ()
   | _ -> Alcotest.fail "treat as");
  (match parse "$x cast as xs:double?" with
   | Ast.E_cast_as (_, "double", true) -> ()
   | _ -> Alcotest.fail "cast as");
  (match parse "$x castable as xs:boolean" with
   | Ast.E_castable_as (_, "boolean", false) -> ()
   | _ -> Alcotest.fail "castable as");
  (match parse "() instance of empty-sequence()" with
   | Ast.E_instance_of (_, Ast.St_empty) -> ()
   | _ -> Alcotest.fail "empty-sequence()");
  (* "instance" with no "of" is an ordinary path step *)
  (match parse "$x/instance" with
   | Ast.E_slash (_, Ast.E_axis_step (_, Ast.Nt_name _, [])) -> ()
   | _ -> Alcotest.fail "instance as tag");
  (match parse "typeswitch (1) case $v as xs:integer return $v default return 0" with
   | Ast.E_typeswitch (_, [ { Ast.tvar = Some "v"; _ } ], (None, _)) -> ()
   | _ -> Alcotest.fail "typeswitch");
  (* precedence: instance of binds tighter than "and" *)
  (match parse "1 instance of xs:integer and 2" with
   | Ast.E_and (Ast.E_instance_of _, _) -> ()
   | _ -> Alcotest.fail "precedence vs and")

let test_parse_errors () =
  expect_syntax_error "for $x in";
  expect_syntax_error "1 +";
  expect_syntax_error "<a></b>";
  expect_syntax_error "(1, 2";
  expect_syntax_error "$";
  expect_syntax_error "declare ordering sideways; 1";
  expect_syntax_error "some $x in (1) 1"

(* -------------------------------------------------------- normalization *)

let test_norm_gencmp_unordered () =
  (* general comparisons wrap both operands (Section 2.2) *)
  let c = norm "(1,2) = (2,3)" in
  check_contains "gencmp" "fn:unordered" c

let test_norm_quant () =
  (* Rule QUANT applies in _either_ mode *)
  let c = norm ~mode:Ast.Ordered "some $x in (1,2) satisfies $x" in
  check_contains "quant domain wrapped" "fn:unordered" c

let test_norm_aggregates () =
  let c = norm "count((1,2))" in
  check_contains "FN:COUNT rule" "count(fn:unordered" c;
  let c = norm "string-join((1,2), \",\")" in
  check_not_contains "string-join is order-sensitive" "fn:unordered" c

let test_norm_union_rule () =
  (* Rule UNION fires only under ordering mode unordered *)
  let c = norm ~mode:Ast.Unordered "$a | $b" in
  check_contains "UNION under unordered" "fn:unordered((" c;
  let c = norm ~mode:Ast.Ordered "$a | $b" in
  check_not_contains "no UNION under ordered" "fn:unordered" c

let test_norm_mode_propagation () =
  let c = norm ~mode:Ast.Ordered "unordered { $a/b }" in
  check_contains "step sees unordered" "step[child,unord]" c;
  let c = norm ~mode:Ast.Unordered "ordered { $a/b }" in
  check_contains "step sees ordered" "step[child,ord]" c

let test_norm_predicates () =
  (* numeric predicate becomes a position test *)
  let c = norm "$a/b[2]" in
  check_contains "positional" "eq 2" c;
  (* last() forces a count binding *)
  let c = norm "$a/b[last()]" in
  check_contains "last binding" "count(" c;
  (* boolean predicate goes through ebv *)
  let c = norm "$a/b[c]" in
  check_contains "ebv" "fs:ebv" c

let test_norm_boundary_ws () =
  let c = norm "<a> <b/> </a>" in
  check_not_contains "boundary ws stripped" "text{" c;
  let c = norm "<a> x </a>" in
  check_contains "real text kept" "text{\" x \"}" c

let test_norm_udf () =
  let q = parse_q "declare function local:f($x) { $x * 2 }; local:f(local:f(3))" in
  let c = Normalize.normalize_query q in
  check_contains "inlined body" "* 2" c;
  check_not_contains "no residual call" "local:f" (c);
  expect_static_error
    "declare function local:f($x) { local:f($x) }; local:f(1)"

let test_norm_errors () =
  expect_static_error ".";                        (* no context item *)
  expect_static_error "position()";
  expect_static_error "nosuchfn(1)";
  expect_static_error "count()";
  expect_static_error "count(1,2)";
  expect_static_error "document { 1 }"

let test_norm_avt () =
  let c = norm {|<e a="x{1+1}y"/>|} in
  check_contains "avt concat" "concat" c;
  check_contains "avt join" "fs:joinws" c

(* an end-to-end sanity check that normalize output is stable for the
   paper's running expression (1) *)
let test_norm_paper_example () =
  let c = norm ~mode:Ast.Unordered "unordered { $t//(c|d) }" in
  (* Rules STEP+UNION: both the step chain and the union get wrapped *)
  check_contains "dos step unordered" "step[descendant-or-self,unord]" c;
  check_contains "union wrapped" "fn:unordered((" c

let () =
  Alcotest.run "xquery"
    [ ( "parser",
        [ Alcotest.test_case "literals" `Quick test_parse_literals;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "paths" `Quick test_parse_path;
          Alcotest.test_case "flwor" `Quick test_parse_flwor;
          Alcotest.test_case "constructors" `Quick test_parse_constructors;
          Alcotest.test_case "prolog" `Quick test_parse_prolog;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "type operators" `Quick test_parse_types;
          Alcotest.test_case "errors" `Quick test_parse_errors ] );
      ( "normalize",
        [ Alcotest.test_case "general cmp wraps operands" `Quick test_norm_gencmp_unordered;
          Alcotest.test_case "rule QUANT" `Quick test_norm_quant;
          Alcotest.test_case "rule FN:COUNT + siblings" `Quick test_norm_aggregates;
          Alcotest.test_case "rule UNION" `Quick test_norm_union_rule;
          Alcotest.test_case "mode propagation" `Quick test_norm_mode_propagation;
          Alcotest.test_case "predicate lowering" `Quick test_norm_predicates;
          Alcotest.test_case "boundary whitespace" `Quick test_norm_boundary_ws;
          Alcotest.test_case "function inlining" `Quick test_norm_udf;
          Alcotest.test_case "static errors" `Quick test_norm_errors;
          Alcotest.test_case "attribute value templates" `Quick test_norm_avt;
          Alcotest.test_case "paper expression (1)" `Quick test_norm_paper_example ] );
    ]
