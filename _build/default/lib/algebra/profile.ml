(* Per-operator wall-clock profiling, the instrument behind Table 2 of the
   paper (the Q11 execution-time breakdown). The compiler labels plan nodes
   with the source sub-expression they implement; the executor adds the
   local evaluation time of every node to its label's bucket. *)

type t = {
  buckets : (string, float ref) Hashtbl.t;
}

let create () = { buckets = Hashtbl.create 32 }

let add t label seconds =
  match Hashtbl.find_opt t.buckets label with
  | Some r -> r := !r +. seconds
  | None -> Hashtbl.add t.buckets label (ref seconds)

let total t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.buckets 0.0

(* Buckets sorted by descending time. *)
let rows t =
  let l = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.buckets [] in
  List.sort (fun (_, a) (_, b) -> Float.compare b a) l

(* Render in the style of the paper's Table 2: time [ms] and % of total. *)
let pp fmt t =
  let tot = total t in
  Format.fprintf fmt "%-42s %12s %6s@." "Bucket" "Time [ms]" "%";
  List.iter
    (fun (label, secs) ->
       let pct = if tot > 0.0 then 100.0 *. secs /. tot else 0.0 in
       Format.fprintf fmt "%-42s %12.1f %5.1f%%@." label (secs *. 1000.0) pct)
    (rows t);
  Format.fprintf fmt "%-42s %12.1f@." "total" (tot *. 1000.0)

let to_string t = Format.asprintf "%a" pp t
