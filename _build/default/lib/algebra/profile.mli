(** Per-operator wall-clock profiling — the instrument behind the paper's
    Table 2 (the Q11 execution-time breakdown). The compiler labels plan
    nodes with the sub-expression category they implement; the executor
    adds each node's local evaluation time to its label's bucket. *)

type t

val create : unit -> t

(** [add t label seconds] accumulates into [label]'s bucket. *)
val add : t -> string -> float -> unit

val total : t -> float

(** Buckets with their accumulated seconds, largest first. *)
val rows : t -> (string * float) list

(** Render in the style of the paper's Table 2: time in ms and % share. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
