lib/algebra/value.ml: Basis Bool Err Float Format Hashtbl Int Printf String Xmldb
