lib/algebra/table.mli: Value
