lib/algebra/plan_pp.mli: Plan
