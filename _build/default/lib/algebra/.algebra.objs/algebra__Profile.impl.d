lib/algebra/profile.ml: Float Format Hashtbl List
