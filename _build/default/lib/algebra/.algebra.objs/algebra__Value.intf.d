lib/algebra/value.mli: Format Xmldb
