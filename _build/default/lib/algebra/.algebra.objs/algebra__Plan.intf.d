lib/algebra/plan.mli: Value Xmldb
