lib/algebra/profile.mli: Format
