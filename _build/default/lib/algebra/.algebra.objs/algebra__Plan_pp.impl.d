lib/algebra/plan_pp.ml: Array Buffer Format Hashtbl List Plan Printf String Value Xmldb
