lib/algebra/plan.ml: Hashtbl List Option String Value Xmldb
