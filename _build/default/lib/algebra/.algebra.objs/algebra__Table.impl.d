lib/algebra/table.ml: Array Basis Buffer Err Format List Printf String Value
