lib/algebra/eval.mli: Plan Profile Table Value Xmldb
