lib/algebra/eval.mli: Basis Plan Profile Table Value Xmldb
