lib/algebra/eval.ml: Array Basis Buffer Err Float Hashtbl Int List Option Plan Profile String Table Unix Value Vec Xmldb
