lib/algebra/eval.ml: Array Basis Budget Buffer Err Float Hashtbl Int List Option Plan Profile String Table Unix Value Vec Xmldb
