(** The reference interpreter: a direct, tree-walking evaluator of XQuery
    Core with strict ordered semantics — [fn:unordered] is the identity,
    as in the open-source processors the paper surveys in Section 6.

    It plays two roles: the semantics oracle for differential testing of
    the compiler, and the order-oblivious baseline engine. *)

(** Evaluate a Core expression against a store (no variables in scope).
    [guard] is checked at every core-expression node (the interpreter's
    operator boundary) and charged with every materialized sequence;
    exhaustion raises {!Basis.Err.Resource_error}. *)
val eval_core :
  ?guard:Basis.Budget.t -> Xmldb.Doc_store.t -> Xquery.Core_ast.core ->
  Xdm.seq

(** Parse, normalize and evaluate a full query text. *)
val run : ?guard:Basis.Budget.t -> Xmldb.Doc_store.t -> string -> Xdm.seq

val run_to_string :
  ?guard:Basis.Budget.t -> Xmldb.Doc_store.t -> string -> string
