(* XDM item sequences for the reference interpreter: plain value lists in
   sequence order. Items reuse the algebra's Value.t so results from the
   interpreter and the compiled plans compare directly. *)

open Basis

type item = Algebra.Value.t
type seq = item list

let atomize store (v : item) : item =
  match v with
  | Algebra.Value.Node n -> Algebra.Value.Str (Xmldb.Doc_store.string_value store n)
  | v -> v

let atomize_seq store s = List.map (atomize store) s

let node_of = function
  | Algebra.Value.Node n -> n
  | v -> Err.dynamic "expected a node, got %s" (Algebra.Value.type_name v)

let singleton name = function
  | [ v ] -> v
  | s -> Err.dynamic "%s expects a singleton, got %d items" name (List.length s)

let opt_singleton name = function
  | [] -> None
  | [ v ] -> Some v
  | s -> Err.dynamic "%s expects at most one item, got %d" name (List.length s)

(* Effective boolean value, per spec (ordered definition). *)
let ebv = function
  | [] -> false
  | Algebra.Value.Node _ :: _ -> true
  | [ v ] -> Algebra.Value.ebv_atomic v
  | s -> Err.dynamic "effective boolean value of a %d-item atomic sequence"
           (List.length s)

(* Sort into document order and remove duplicates; raises on atomics. *)
let distinct_doc_order (s : seq) : seq =
  let nodes = List.map node_of s in
  let sorted = List.sort_uniq Xmldb.Node_id.compare nodes in
  List.map (fun n -> Algebra.Value.Node n) sorted

let string_of_item store (v : item) =
  Algebra.Value.to_string (atomize store v)

(* Serialize a sequence: nodes serialize as XML, adjacent atomics are
   separated by a single space (standard XQuery serialization). *)
let serialize store (s : seq) : string =
  let buf = Buffer.create 128 in
  let prev_atomic = ref false in
  List.iter
    (fun v ->
       match v with
       | Algebra.Value.Node n ->
         Xmldb.Serialize.node_to_buf store buf n;
         prev_atomic := false
       | atom ->
         if !prev_atomic then Buffer.add_char buf ' ';
         Buffer.add_string buf (Algebra.Value.to_string atom);
         prev_atomic := true)
    s;
  Buffer.contents buf
