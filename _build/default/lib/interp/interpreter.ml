(* The reference interpreter: a direct, tree-walking evaluator of XQuery
   Core with strict ordered semantics (fn:unordered is the identity, as in
   the open-source processors the paper surveys in Section 6). It plays
   two roles in this reproduction:
     - the semantics oracle for differential testing of the compiler, and
     - the "order-oblivious baseline" engine for benchmark comparisons. *)

open Basis
open Xquery.Core_ast
module Value = Algebra.Value

type env = {
  store : Xmldb.Doc_store.t;
  vars : (string * Xdm.seq) list;
  guard : Budget.t option;  (* resource governor, checked per core node *)
}

let lookup env v =
  match List.assoc_opt v env.vars with
  | Some s -> s
  | None -> Err.internal "unbound variable $%s" v

let bind env v s = { env with vars = (v, s) :: env.vars }

(* -- node test conversion -------------------------------------------------- *)

let node_test_of_ast store (t : Xquery.Ast.node_test) : Xmldb.Node_test.t =
  match t with
  | Xquery.Ast.Nt_name q -> Xmldb.Node_test.Name (Xmldb.Doc_store.name_test_id store q)
  | Xquery.Ast.Nt_wild -> Xmldb.Node_test.Name_wild
  | Xquery.Ast.Nt_prefix_wild _ ->
    Err.static "prefix:* node tests are not supported"
  | Xquery.Ast.Nt_kind_node -> Xmldb.Node_test.Any_node
  | Xquery.Ast.Nt_kind_text -> Xmldb.Node_test.Kind Xmldb.Node_kind.Text
  | Xquery.Ast.Nt_kind_comment -> Xmldb.Node_test.Kind Xmldb.Node_kind.Comment
  | Xquery.Ast.Nt_kind_document -> Xmldb.Node_test.Kind Xmldb.Node_kind.Document
  | Xquery.Ast.Nt_kind_element None -> Xmldb.Node_test.Kind Xmldb.Node_kind.Element
  | Xquery.Ast.Nt_kind_element (Some q) ->
    Xmldb.Node_test.Name (Xmldb.Doc_store.name_test_id store q)
  | Xquery.Ast.Nt_kind_attribute None ->
    Xmldb.Node_test.Kind Xmldb.Node_kind.Attribute
  | Xquery.Ast.Nt_kind_attribute (Some q) ->
    Xmldb.Node_test.Name (Xmldb.Doc_store.name_test_id store q)
  | Xquery.Ast.Nt_kind_pi None ->
    Xmldb.Node_test.Kind Xmldb.Node_kind.Processing_instruction
  | Xquery.Ast.Nt_kind_pi (Some t') -> Xmldb.Node_test.Pi_target t'

(* An attribute name test via the abbreviated/attribute axis must match
   attribute nodes: Staircase handles the principal node kind. *)

(* -- construction helpers --------------------------------------------------- *)

(* Content items -> children of the open node in [b]; adjacent atomics are
   space-joined (same rule as the algebra's Elem operator). *)
let add_content () b items =
  let prev_atomic = ref false in
  List.iter
    (fun it ->
       match it with
       | Value.Node n ->
         Xmldb.Doc_store.Builder.copy b n;
         prev_atomic := false
       | atom ->
         let s = Value.to_string atom in
         if !prev_atomic then Xmldb.Doc_store.Builder.text b (" " ^ s)
         else Xmldb.Doc_store.Builder.text b s;
         prev_atomic := true)
    items

let qname_of_item (v : Xdm.item) =
  match v with
  | Value.Qname_v q -> q
  | Value.Str s -> Xmldb.Qname.of_string s
  | v -> Err.dynamic "invalid node name: %s" (Value.type_name v)

let construct_element store name content =
  let b = Xmldb.Doc_store.Builder.create store in
  Xmldb.Doc_store.Builder.start_element b name;
  add_content () b content;
  Xmldb.Doc_store.Builder.end_element b;
  let _, roots = Xmldb.Doc_store.Builder.finish b in
  Value.Node roots.(0)

(* fs:textify — item-sequence-to-node-sequence: atomic runs become single
   text nodes (space separated); nodes pass through unchanged. *)
let textify store (s : Xdm.seq) : Xdm.seq =
  let out = ref [] in
  let flush_run run =
    match List.rev run with
    | [] -> ()
    | items ->
      let text = String.concat " " (List.map Value.to_string items) in
      let b = Xmldb.Doc_store.Builder.create store in
      Xmldb.Doc_store.Builder.force_text b text;
      let _, roots = Xmldb.Doc_store.Builder.finish b in
      out := Value.Node roots.(0) :: !out
  in
  let run = ref [] in
  List.iter
    (fun it ->
       match it with
       | Value.Node _ ->
         flush_run !run;
         run := [];
         out := it :: !out
       | atom -> run := atom :: !run)
    s;
  flush_run !run;
  List.rev !out

(* -- comparisons ------------------------------------------------------------ *)

let gen_cmp_fun (op : Xquery.Ast.general_cmp) =
  match op with
  | Xquery.Ast.Geq -> Value.cmp_eq
  | Xquery.Ast.Gne -> Value.cmp_ne
  | Xquery.Ast.Glt -> Value.cmp_lt
  | Xquery.Ast.Gle -> Value.cmp_le
  | Xquery.Ast.Ggt -> Value.cmp_gt
  | Xquery.Ast.Gge -> Value.cmp_ge

let val_cmp_fun (op : Xquery.Ast.value_cmp) =
  match op with
  | Xquery.Ast.Veq -> Value.cmp_eq
  | Xquery.Ast.Vne -> Value.cmp_ne
  | Xquery.Ast.Vlt -> Value.cmp_lt
  | Xquery.Ast.Vle -> Value.cmp_le
  | Xquery.Ast.Vgt -> Value.cmp_gt
  | Xquery.Ast.Vge -> Value.cmp_ge

let arith_fun (op : Xquery.Ast.arith) =
  match op with
  | Xquery.Ast.Add -> Value.add
  | Xquery.Ast.Sub -> Value.sub
  | Xquery.Ast.Mul -> Value.mul
  | Xquery.Ast.Div -> Value.div
  | Xquery.Ast.Idiv -> Value.idiv
  | Xquery.Ast.Mod -> Value.modulo

(* Ast type names (canonicalized by Normalize) to the algebra's dynamic
   type vocabulary (mirrors Exrquy.Compile; interp and compiler must not
   depend on each other). *)
let atomic_ty = function
  | "integer" -> Algebra.Plan.Ty_integer
  | "double" -> Algebra.Plan.Ty_double
  | "string" -> Algebra.Plan.Ty_string
  | "boolean" -> Algebra.Plan.Ty_boolean
  | "untypedAtomic" -> Algebra.Plan.Ty_untyped
  | "anyAtomicType" -> Algebra.Plan.Ty_any_atomic
  | other -> Err.internal "unexpected atomic type %s" other

let item_ty (t : Xquery.Ast.item_type) : Algebra.Plan.item_ty =
  match t with
  | Xquery.Ast.It_item -> Algebra.Plan.Ty_item
  | Xquery.Ast.It_node -> Algebra.Plan.Ty_node
  | Xquery.Ast.It_element q -> Algebra.Plan.Ty_element q
  | Xquery.Ast.It_attribute q -> Algebra.Plan.Ty_attribute q
  | Xquery.Ast.It_text -> Algebra.Plan.Ty_text
  | Xquery.Ast.It_comment -> Algebra.Plan.Ty_comment
  | Xquery.Ast.It_pi -> Algebra.Plan.Ty_pi
  | Xquery.Ast.It_document -> Algebra.Plan.Ty_document
  | Xquery.Ast.It_atomic n -> Algebra.Plan.Ty_atomic (atomic_ty n)

(* "s instance of ty": cardinality plus per-item dynamic type tests. *)
let seq_instance store (ty : Xquery.Ast.seq_type) (s : Xdm.seq) =
  match ty with
  | Xquery.Ast.St_empty -> s = []
  | Xquery.Ast.St (ity, occ) ->
    let n = List.length s in
    let card_ok =
      match occ with
      | Xquery.Ast.Occ_one -> n = 1
      | Xquery.Ast.Occ_opt -> n <= 1
      | Xquery.Ast.Occ_plus -> n >= 1
      | Xquery.Ast.Occ_star -> true
    in
    card_ok
    && List.for_all
         (fun v ->
            match Algebra.Eval.apply1 store (Algebra.Plan.P_instance_item (item_ty ity)) v with
            | Value.Bool b -> b
            | _ -> false)
         s

(* -- the evaluator ----------------------------------------------------------- *)

(* Every core-expression node is an operator boundary: check the guard on
   the way in, charge the materialized sequence on the way out. *)
let rec eval env (e : core) : Xdm.seq =
  match env.guard with
  | None -> eval_expr env e
  | Some g ->
    Budget.check g;
    let s = eval_expr env e in
    Budget.add_rows g (List.length s);
    if Budget.wants_bytes g then
      Budget.add_bytes g
        (List.fold_left (fun acc v -> acc + Value.estimated_bytes v) 0 s);
    s

and eval_expr env (e : core) : Xdm.seq =
  match e with
  | C_int n -> [ Value.Int n ]
  | C_dbl f -> [ Value.Dbl f ]
  | C_str s -> [ Value.Str s ]
  | C_qname q -> [ Value.Qname_v q ]
  | C_empty -> []
  | C_var v -> lookup env v
  | C_seq es -> List.concat_map (eval env) es
  | C_flwor f -> eval_flwor env f
  | C_quant { q; var; domain; body } ->
    let dom = eval env domain in
    let test item = Xdm.ebv (eval (bind env var [ item ]) body) in
    [ Value.Bool
        (match q with
         | Xquery.Ast.Some_q -> List.exists test dom
         | Xquery.Ast.Every_q -> List.for_all test dom) ]
  | C_if (c, t, e2) ->
    if Xdm.ebv (eval env c) then eval env t else eval env e2
  | C_step { input; axis; test; mode = _ } ->
    let ctxs = List.map Xdm.node_of (eval env input) in
    let result =
      Xmldb.Staircase.step env.store axis
        (node_test_of_ast env.store test)
        (Array.of_list ctxs)
    in
    Array.to_list (Array.map (fun n -> Value.Node n) result)
  | C_ddo { input; mode = _ } -> Xdm.distinct_doc_order (eval env input)
  | C_unordered e' -> eval env e' (* the identity: strict ordered baseline *)
  | C_gencmp (op, a, b) ->
    let sa = Xdm.atomize_seq env.store (eval env a) in
    let sb = Xdm.atomize_seq env.store (eval env b) in
    let f = gen_cmp_fun op in
    [ Value.Bool (List.exists (fun x -> List.exists (fun y -> f x y) sb) sa) ]
  | C_valcmp (op, a, b) ->
    let sa = Xdm.atomize_seq env.store (eval env a) in
    let sb = Xdm.atomize_seq env.store (eval env b) in
    (match (Xdm.opt_singleton "value comparison" sa,
            Xdm.opt_singleton "value comparison" sb) with
     | Some x, Some y -> [ Value.Bool (val_cmp_fun op x y) ]
     | _ -> [])
  | C_nodecmp (op, a, b) ->
    let sa = eval env a and sb = eval env b in
    (match (Xdm.opt_singleton "node comparison" sa,
            Xdm.opt_singleton "node comparison" sb) with
     | Some x, Some y ->
       let nx = Xdm.node_of x and ny = Xdm.node_of y in
       [ Value.Bool
           (match op with
            | Xquery.Ast.Is -> Xmldb.Node_id.equal nx ny
            | Xquery.Ast.Precedes -> Xmldb.Node_id.compare nx ny < 0
            | Xquery.Ast.Follows -> Xmldb.Node_id.compare nx ny > 0) ]
     | _ -> [])
  | C_arith (op, a, b) ->
    let sa = Xdm.atomize_seq env.store (eval env a) in
    let sb = Xdm.atomize_seq env.store (eval env b) in
    (match (Xdm.opt_singleton "arithmetic" sa, Xdm.opt_singleton "arithmetic" sb) with
     | Some x, Some y -> [ arith_fun op x y ]
     | _ -> [])
  | C_neg a ->
    (match Xdm.opt_singleton "unary minus" (Xdm.atomize_seq env.store (eval env a)) with
     | Some x -> [ Value.neg x ]
     | None -> [])
  | C_and (a, b) ->
    [ Value.Bool (Xdm.ebv (eval env a) && Xdm.ebv (eval env b)) ]
  | C_or (a, b) ->
    [ Value.Bool (Xdm.ebv (eval env a) || Xdm.ebv (eval env b)) ]
  | C_union (a, b, _) ->
    Xdm.distinct_doc_order (eval env a @ eval env b)
  | C_intersect (a, b, _) ->
    let sb = List.map Xdm.node_of (eval env b) in
    Xdm.distinct_doc_order
      (List.filter
         (fun v -> List.exists (Xmldb.Node_id.equal (Xdm.node_of v)) sb)
         (eval env a))
  | C_except (a, b, _) ->
    let sb = List.map Xdm.node_of (eval env b) in
    Xdm.distinct_doc_order
      (List.filter
         (fun v -> not (List.exists (Xmldb.Node_id.equal (Xdm.node_of v)) sb))
         (eval env a))
  | C_range (a, b) ->
    (match (Xdm.opt_singleton "to" (Xdm.atomize_seq env.store (eval env a)),
            Xdm.opt_singleton "to" (Xdm.atomize_seq env.store (eval env b))) with
     | Some x, Some y ->
       let lo = Value.int_value x and hi = Value.int_value y in
       if lo > hi then [] else List.init (hi - lo + 1) (fun i -> Value.Int (lo + i))
     | _ -> [])
  | C_call (f, args) -> eval_call env f args
  | C_elem { name; content } ->
    let n = qname_of_item (Xdm.singleton "element name" (eval env name)) in
    [ construct_element env.store n (eval env content) ]
  | C_attr { name; value } ->
    let n = qname_of_item (Xdm.singleton "attribute name" (eval env name)) in
    let v =
      match eval env value with
      | [] -> ""
      | s -> Xdm.string_of_item env.store (Xdm.singleton "attribute value" s)
    in
    let b = Xmldb.Doc_store.Builder.create env.store in
    Xmldb.Doc_store.Builder.attribute b n v;
    let _, roots = Xmldb.Doc_store.Builder.finish b in
    [ Value.Node roots.(0) ]
  | C_text v ->
    let s =
      match eval env v with
      | [] -> ""
      | s -> Xdm.string_of_item env.store (Xdm.singleton "text content" s)
    in
    let b = Xmldb.Doc_store.Builder.create env.store in
    Xmldb.Doc_store.Builder.force_text b s;
    let _, roots = Xmldb.Doc_store.Builder.finish b in
    [ Value.Node roots.(0) ]
  | C_comment v ->
    let s =
      match eval env v with
      | [] -> ""
      | s -> Xdm.string_of_item env.store (Xdm.singleton "comment content" s)
    in
    let b = Xmldb.Doc_store.Builder.create env.store in
    Xmldb.Doc_store.Builder.comment b s;
    let _, roots = Xmldb.Doc_store.Builder.finish b in
    [ Value.Node roots.(0) ]
  | C_pi { target; value } ->
    let t = Xdm.string_of_item env.store (Xdm.singleton "pi target" (eval env target)) in
    let v =
      match eval env value with
      | [] -> ""
      | s -> Xdm.string_of_item env.store (Xdm.singleton "pi content" s)
    in
    let b = Xmldb.Doc_store.Builder.create env.store in
    Xmldb.Doc_store.Builder.pi b t v;
    let _, roots = Xmldb.Doc_store.Builder.finish b in
    [ Value.Node roots.(0) ]
  | C_textify e' -> textify env.store (eval env e')
  | C_instance { input; ty } ->
    [ Value.Bool (seq_instance env.store ty (eval env input)) ]
  | C_treat { input; ty } ->
    let s = eval env input in
    if seq_instance env.store ty s then s
    else Err.dynamic "treat as: the operand does not match the required type"
  | C_cast { input; ty; optional } ->
    (match Xdm.atomize_seq env.store (eval env input) with
     | [] ->
       if optional then []
       else Err.dynamic "cast as xs:%s of an empty sequence" ty
     | [ v ] ->
       [ Algebra.Eval.apply1 env.store (Algebra.Plan.P_cast_as (atomic_ty ty)) v ]
     | s -> Err.dynamic "cast as: %d items" (List.length s))
  | C_castable { input; ty; optional } ->
    (match Xdm.atomize_seq env.store (eval env input) with
     | [] -> [ Value.Bool optional ]
     | [ v ] ->
       [ Algebra.Eval.apply1 env.store (Algebra.Plan.P_castable (atomic_ty ty)) v ]
     | _ -> [ Value.Bool false ])

and eval_flwor env (f : flwor) : Xdm.seq =
  (* the tuple stream is a list of environments *)
  let tuples =
    List.fold_left
      (fun tuples cl ->
         match cl with
         | CFor { var; pos_var; domain; reverse_pos } ->
           List.concat_map
             (fun tenv ->
                let dom = eval tenv domain in
                let n = List.length dom in
                List.mapi
                  (fun i item ->
                     let tenv = bind tenv var [ item ] in
                     match pos_var with
                     | Some p ->
                       let pos = if reverse_pos then n - i else i + 1 in
                       bind tenv p [ Value.Int pos ]
                     | None -> tenv)
                  dom)
             tuples
         | CLet { var; def } ->
           List.map (fun tenv -> bind tenv var (eval tenv def)) tuples
         | CWhere cond ->
           List.filter (fun tenv -> Xdm.ebv (eval tenv cond)) tuples)
      [ env ] f.clauses
  in
  let tuples =
    if f.order_by = [] then tuples
    else begin
      (* decorate with keys; stable sort *)
      let keyed =
        List.map
          (fun tenv ->
             let keys =
               List.map
                 (fun (k, dir, empty) ->
                    let kv =
                      Xdm.opt_singleton "order by key"
                        (Xdm.atomize_seq env.store (eval tenv k))
                    in
                    (kv, dir, empty))
                 f.order_by
             in
             (keys, tenv))
          tuples
      in
      let cmp_key (a, dir, empty) (b, _, _) =
        let c =
          match (a, b) with
          | None, None -> 0
          | None, Some _ ->
            (match (empty : Xquery.Ast.empty_order) with
             | Xquery.Ast.Empty_least -> -1
             | Xquery.Ast.Empty_greatest -> 1)
          | Some _, None ->
            (match (empty : Xquery.Ast.empty_order) with
             | Xquery.Ast.Empty_least -> 1
             | Xquery.Ast.Empty_greatest -> -1)
          | Some x, Some y -> Value.compare_total x y
        in
        match (dir : Xquery.Ast.sort_dir) with
        | Xquery.Ast.Ascending -> c
        | Xquery.Ast.Descending -> -c
      in
      let rec cmp_keys ks1 ks2 =
        match (ks1, ks2) with
        | [], [] -> 0
        | k1 :: r1, k2 :: r2 ->
          let c = cmp_key k1 k2 in
          if c <> 0 then c else cmp_keys r1 r2
        | _ -> Err.internal "order by key arity mismatch"
      in
      List.map snd
        (List.stable_sort (fun (k1, _) (k2, _) -> cmp_keys k1 k2) keyed)
    end
  in
  List.concat_map (fun tenv -> eval tenv f.return_) tuples

and eval_call env f args : Xdm.seq =
  let store = env.store in
  let one name = eval env (List.nth args name) in
  match (f, args) with
  | "doc", [ a ] ->
    let uri = Xdm.string_of_item store (Xdm.singleton "doc uri" (eval env a)) in
    (match Xmldb.Doc_store.find_document store uri with
     | Some n -> [ Value.Node n ]
     | None -> Err.dynamic "fn:doc: document %S not available" uri)
  | "count", [ a ] -> [ Value.Int (List.length (eval env a)) ]
  | "sum", [ a ] ->
    [ List.fold_left
        (fun acc v -> Value.add acc v)
        (Value.Int 0)
        (Xdm.atomize_seq store (eval env a)) ]
  | ("max" | "min"), [ a ] ->
    let s = Xdm.atomize_seq store (eval env a) in
    (* fn:min/max cast untyped items to numbers when the whole sequence
       has a numeric reading (matching the algebra's A_min/A_max) *)
    let numeric = List.map Value.numeric_view s in
    let s =
      if s <> [] && List.for_all Option.is_some numeric then
        List.map Option.get numeric
      else s
    in
    (match s with
     | [] -> []
     | first :: rest ->
       let better = if f = "max" then Value.cmp_gt else Value.cmp_lt in
       let best =
         List.fold_left (fun acc v -> if better v acc then v else acc) first rest
       in
       let has_nan =
         List.exists
           (function Value.Dbl x -> Float.is_nan x | _ -> false)
           s
       in
       [ (if has_nan then Value.Dbl Float.nan else best) ])
  | "avg", [ a ] ->
    let s = Xdm.atomize_seq store (eval env a) in
    (match s with
     | [] -> []
     | _ ->
       let sum = List.fold_left Value.add (Value.Int 0) s in
       [ Value.div sum (Value.Int (List.length s)) ])
  | "empty", [ a ] -> [ Value.Bool (eval env a = []) ]
  | "exists", [ a ] -> [ Value.Bool (eval env a <> []) ]
  | "not", [ a ] -> [ Value.Bool (not (Xdm.ebv (eval env a))) ]
  | "boolean", [ a ] | "fs:ebv", [ a ] -> [ Value.Bool (Xdm.ebv (eval env a)) ]
  | "distinct-values", [ a ] ->
    let s = Xdm.atomize_seq store (eval env a) in
    let out = ref [] in
    List.iter
      (fun v -> if not (List.exists (Value.equal v) !out) then out := v :: !out)
      s;
    List.rev !out
  | "data", [ a ] -> Xdm.atomize_seq store (eval env a)
  | "string", [ a ] ->
    (match eval env a with
     | [] -> [ Value.Str "" ]
     | s -> [ Value.Str (Xdm.string_of_item store (Xdm.singleton "fn:string" s)) ])
  | "string-length", [ a ] ->
    (match eval env a with
     | [] -> [ Value.Int 0 ]
     | s ->
       [ Value.Int
           (String.length (Xdm.string_of_item store (Xdm.singleton "fn:string-length" s))) ])
  | "normalize-space", [ a ] ->
    (match eval env a with
     | [] -> [ Value.Str "" ]
     | s ->
       let str = Xdm.string_of_item store (Xdm.singleton "fn:normalize-space" s) in
       let words =
         String.split_on_char ' '
           (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) str)
         |> List.filter (fun w -> w <> "")
       in
       [ Value.Str (String.concat " " words) ])
  | "concat", [ a; b ] ->
    let s1 =
      match eval env a with
      | [] -> ""
      | s -> Xdm.string_of_item store (Xdm.singleton "fn:concat" s)
    and s2 =
      match eval env b with
      | [] -> ""
      | s -> Xdm.string_of_item store (Xdm.singleton "fn:concat" s)
    in
    [ Value.Str (s1 ^ s2) ]
  | "contains", [ a; b ] ->
    let s = ebv_str store (eval env a) and sub = ebv_str store (eval env b) in
    [ Algebra.Eval.apply2 store Algebra.Plan.P_contains (Value.Str s) (Value.Str sub) ]
  | "starts-with", [ a; b ] ->
    let s = ebv_str store (eval env a) and p = ebv_str store (eval env b) in
    [ Algebra.Eval.apply2 store Algebra.Plan.P_starts_with (Value.Str s) (Value.Str p) ]
  | "string-join", [ a; b ] ->
    let sep = Xdm.string_of_item store (Xdm.singleton "separator" (eval env b)) in
    let parts = List.map (Xdm.string_of_item store) (eval env a) in
    [ Value.Str (String.concat sep parts) ]
  | "fs:joinws", [ a ] ->
    let parts = List.map (Xdm.string_of_item store) (eval env a) in
    [ Value.Str (String.concat " " parts) ]
  | "number", [ a ] ->
    (match Xdm.opt_singleton "fn:number" (eval env a) with
     | None -> [ Value.Dbl Float.nan ]
     | Some v ->
       (match Value.float_value (Xdm.atomize store v) with
        | x -> [ Value.Dbl x ]
        | exception Err.Dynamic_error _ -> [ Value.Dbl Float.nan ]))
  | "reverse", [ a ] -> List.rev (eval env a)
  | "subsequence", (a :: rest) ->
    let s = eval env a in
    let num e' =
      Value.float_value
        (Xdm.singleton "fn:subsequence" (Xdm.atomize_seq store (eval env e')))
    in
    let start, len =
      match rest with
      | [ st' ] -> (num st', infinity)
      | [ st'; ln ] -> (num st', num ln)
      | _ -> Err.static "fn:subsequence arity"
    in
    let lo = Float.floor (start +. 0.5) in
    let hi = lo +. len in  (* position < hi *)
    List.filteri
      (fun i _ ->
         let p = float_of_int (i + 1) in
         p >= lo && p < hi)
      s
  | ("round" | "floor" | "ceiling" | "abs"), [ a ] ->
    (match Xdm.opt_singleton f (Xdm.atomize_seq store (eval env a)) with
     | None -> []
     | Some v ->
       let p1 =
         match f with
         | "round" -> Algebra.Plan.P_round
         | "floor" -> Algebra.Plan.P_floor
         | "ceiling" -> Algebra.Plan.P_ceiling
         | _ -> Algebra.Plan.P_abs
       in
       [ Algebra.Eval.apply1 store p1 v ])
  | ("name" | "local-name"), [ a ] ->
    (match Xdm.opt_singleton f (eval env a) with
     | None -> [ Value.Str "" ]
     | Some v ->
       let p1 = if f = "name" then Algebra.Plan.P_name else Algebra.Plan.P_local_name in
       [ Algebra.Eval.apply1 store p1 v ])
  | "true", [] -> [ Value.Bool true ]
  | "false", [] -> [ Value.Bool false ]
  | "zero-or-one", [ a ] ->
    (match eval env a with
     | ([] | [ _ ]) as s -> s
     | s -> Err.dynamic "fn:zero-or-one: %d items" (List.length s))
  | "exactly-one", [ a ] ->
    (match eval env a with
     | [ v ] -> [ v ]
     | s -> Err.dynamic "fn:exactly-one: %d items" (List.length s))
  | "one-or-more", [ a ] ->
    (match eval env a with
     | [] -> Err.dynamic "fn:one-or-more: empty sequence"
     | s -> s)
  | ("upper-case" | "lower-case"), [ a ] ->
    let prim = if f = "upper-case" then Algebra.Plan.P_upper else Algebra.Plan.P_lower in
    (match eval env a with
     | [] -> [ Value.Str "" ]
     | s -> [ Algebra.Eval.apply1 store prim (Xdm.singleton f s) ])
  | ("ends-with" | "substring-before" | "substring-after"), [ a; b ] ->
    let prim =
      match f with
      | "ends-with" -> Algebra.Plan.P_ends_with
      | "substring-before" -> Algebra.Plan.P_substr_before
      | _ -> Algebra.Plan.P_substr_after
    in
    let s = ebv_str store (eval env a) and p = ebv_str store (eval env b) in
    [ Algebra.Eval.apply2 store prim (Value.Str s) (Value.Str p) ]
  | "substring", (a :: rest) ->
    let s = ebv_str store (eval env a) in
    let num e' = Xdm.singleton "fn:substring" (Xdm.atomize_seq store (eval env e')) in
    let start, len =
      match rest with
      | [ st' ] -> (num st', Value.Dbl infinity)
      | [ st'; ln ] -> (num st', ln |> fun e' -> num e')
      | _ -> Err.static "fn:substring arity"
    in
    [ Algebra.Eval.apply3 store Algebra.Plan.P3_substring (Value.Str s) start len ]
  | "translate", [ a; b; c' ] ->
    let g e' = Value.Str (ebv_str store (eval env e')) in
    [ Algebra.Eval.apply3 store Algebra.Plan.P3_translate (g a) (g b) (g c') ]
  | "remove", [ a; b ] ->
    let s = eval env a in
    let p = Value.int_value (Xdm.singleton "fn:remove" (Xdm.atomize_seq store (eval env b))) in
    List.filteri (fun i _ -> i + 1 <> p) s
  | "insert-before", [ a; b; c' ] ->
    let s = eval env a in
    let p = Value.int_value (Xdm.singleton "fn:insert-before" (Xdm.atomize_seq store (eval env b))) in
    let ins = eval env c' in
    let p = max 1 (min p (List.length s + 1)) in
    let rec go i = function
      | [] -> ins
      | x :: rest when i = p -> ins @ (x :: rest)
      | x :: rest -> x :: go (i + 1) rest
    in
    go 1 s
  | "fs:serialize-seq", [ a ] ->
    let parts =
      List.map
        (fun it ->
           match Algebra.Eval.apply1 store Algebra.Plan.P_serialize it with
           | Value.Str s -> s
           | _ -> assert false)
        (eval env a)
    in
    [ Value.Str (String.concat "\x1f" parts) ]
  | "id", [ a; b ] ->
    let vals = List.map (Xdm.string_of_item store) (eval env a) in
    (match Xdm.opt_singleton "fn:id context" (eval env b) with
     | None -> []
     | Some ctx ->
       let idx = Xmldb.Id_index.create store in
       Array.to_list
         (Array.map
            (fun n -> Value.Node n)
            (Xmldb.Id_index.lookup idx ~ctx:(Xdm.node_of ctx) vals)))
  | "error", args' ->
    let msg =
      match List.rev args' with
      | [] -> "fn:error()"
      | last :: _ ->
        (match eval env last with
         | [] -> "fn:error()"
         | s -> Xdm.string_of_item store (Xdm.singleton "fn:error" s))
    in
    Err.dynamic "fn:error: %s" msg
  | _ ->
    ignore one;
    Err.static "interpreter: unknown function %s/%d" f (List.length args)

and ebv_str store s =
  match s with
  | [] -> ""
  | s -> Xdm.string_of_item store (Xdm.singleton "string argument" s)

(* -- entry points ------------------------------------------------------------ *)

let eval_core ?guard store core = eval { store; vars = []; guard } core

(* Parse, normalize and evaluate a full query text. *)
let run ?guard store text : Xdm.seq =
  let q = Xquery.Parser.parse_query text in
  let core = Xquery.Normalize.normalize_query q in
  eval_core ?guard store core

let run_to_string ?guard store text = Xdm.serialize store (run ?guard store text)
