lib/interp/xdm.ml: Algebra Basis Buffer Err List Xmldb
