lib/interp/interpreter.ml: Algebra Array Basis Budget Err Float List Option String Xdm Xmldb Xquery
