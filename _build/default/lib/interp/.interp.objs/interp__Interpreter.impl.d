lib/interp/interpreter.ml: Algebra Array Basis Err Float List Option String Xdm Xmldb Xquery
