lib/interp/interpreter.mli: Basis Xdm Xmldb Xquery
