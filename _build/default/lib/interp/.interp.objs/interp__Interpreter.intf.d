lib/interp/interpreter.mli: Xdm Xmldb Xquery
