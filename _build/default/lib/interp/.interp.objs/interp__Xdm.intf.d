lib/interp/xdm.mli: Algebra Xmldb
