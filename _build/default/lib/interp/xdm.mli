(** XDM item sequences for the reference interpreter: plain value lists in
    sequence order, reusing {!Algebra.Value} so interpreter and compiled
    results compare directly. *)

type item = Algebra.Value.t
type seq = item list

(** Atomization: nodes become their string value. *)
val atomize : Xmldb.Doc_store.t -> item -> item

val atomize_seq : Xmldb.Doc_store.t -> seq -> seq

(** The node inside an item; dynamic error on atomics. *)
val node_of : item -> Xmldb.Node_id.t

(** Enforce cardinality exactly one / at most one (dynamic errors
    otherwise); [name] labels the error message. *)
val singleton : string -> seq -> item
val opt_singleton : string -> seq -> item option

(** Effective boolean value per the spec: empty → false, first item a
    node → true, singleton atomic by value, otherwise a dynamic error. *)
val ebv : seq -> bool

(** Sort into document order and remove duplicate nodes; raises on
    atomics. *)
val distinct_doc_order : seq -> seq

val string_of_item : Xmldb.Doc_store.t -> item -> string

(** Serialize a sequence: nodes as XML, adjacent atomics separated by a
    single space. *)
val serialize : Xmldb.Doc_store.t -> seq -> string
