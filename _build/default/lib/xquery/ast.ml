(* Surface syntax AST of the supported XQuery subset (large enough for the
   20 XMark queries and every example of the paper). Produced by Parser,
   consumed by Normalize. *)

type ordering_mode = Ordered | Unordered

type quantifier = Some_q | Every_q

(* General comparisons (existential semantics), value comparisons
   (singleton), node comparisons. *)
type general_cmp = Geq | Gne | Glt | Gle | Ggt | Gge
type value_cmp = Veq | Vne | Vlt | Vle | Vgt | Vge
type node_cmp = Is | Precedes | Follows

type arith = Add | Sub | Mul | Div | Idiv | Mod

type sort_dir = Ascending | Descending

type empty_order = Empty_greatest | Empty_least

(* Node tests, lexically (QNames resolved later against the store). *)
type node_test =
  | Nt_name of Xmldb.Qname.t
  | Nt_wild                          (* "*" *)
  | Nt_prefix_wild of string         (* prefix:* *)
  | Nt_kind_node                     (* node() *)
  | Nt_kind_text
  | Nt_kind_element of Xmldb.Qname.t option
  | Nt_kind_attribute of Xmldb.Qname.t option
  | Nt_kind_comment
  | Nt_kind_pi of string option
  | Nt_kind_document

(* Sequence types (instance of / treat as / typeswitch). *)
type occurrence = Occ_one | Occ_opt | Occ_star | Occ_plus

type item_type =
  | It_item
  | It_node
  | It_element of Xmldb.Qname.t option
  | It_attribute of Xmldb.Qname.t option
  | It_text
  | It_comment
  | It_pi
  | It_document
  | It_atomic of string   (* local name of the xs: type *)

type seq_type =
  | St_empty                       (* empty-sequence() *)
  | St of item_type * occurrence

type expr =
  | E_int of int
  | E_dec of float
  | E_str of string
  | E_var of string
  | E_context_item                   (* "." *)
  | E_seq of expr list               (* (e1, e2, ...); [] is "()" *)
  | E_flwor of flwor
  | E_quantified of quantifier * (string * expr) list * expr
  | E_if of expr * expr * expr
  | E_or of expr * expr
  | E_and of expr * expr
  | E_general_cmp of general_cmp * expr * expr
  | E_value_cmp of value_cmp * expr * expr
  | E_node_cmp of node_cmp * expr * expr
  | E_range of expr * expr           (* e1 to e2 *)
  | E_arith of arith * expr * expr
  | E_unary_minus of expr
  | E_union of expr * expr           (* "|" / union *)
  | E_intersect of expr * expr
  | E_except of expr * expr
  | E_slash of expr * expr           (* e1 / e2 *)
  | E_axis_step of Xmldb.Axis.t * node_test * expr list (* step with predicates *)
  | E_filter of expr * expr list     (* primary expr with predicates *)
  | E_call of string * expr list
  | E_ordered of expr                (* ordered { e } *)
  | E_unordered of expr              (* unordered { e } *)
  | E_elem_direct of Xmldb.Qname.t * (Xmldb.Qname.t * attr_piece list) list * content list
  | E_elem_computed of name_spec * expr
  | E_attr_computed of name_spec * expr
  | E_text_computed of expr
  | E_comment_computed of expr
  | E_pi_computed of name_spec * expr
  | E_doc_computed of expr           (* document { e } *)
  | E_instance_of of expr * seq_type
  | E_treat_as of expr * seq_type
  | E_castable_as of expr * string * bool   (* xs type local name, "?" *)
  | E_cast_as of expr * string * bool
  | E_typeswitch of expr * ts_case list * (string option * expr)

and ts_case = { tvar : string option; ttype : seq_type; tbody : expr }

(* Attribute value template pieces: literal text and {embedded} exprs. *)
and attr_piece =
  | Ap_text of string
  | Ap_expr of expr

(* Direct element content. *)
and content =
  | C_text of string                 (* literal character data *)
  | C_expr of expr                   (* { enclosed } *)
  | C_elem of expr                   (* nested direct constructor (already an expr) *)

and name_spec =
  | Name_const of Xmldb.Qname.t
  | Name_computed of expr

and flwor = {
  clauses : clause list;
  order_by : order_spec list;        (* empty when there is no order by *)
  stable : bool;
  return_ : expr;
}

and clause =
  | For_clause of { var : string; pos_var : string option; domain : expr }
  | Let_clause of { var : string; def : expr }
  | Where_clause of expr

and order_spec = {
  key : expr;
  dir : sort_dir;
  empty : empty_order;
}

(* A user function declared in the prolog. *)
type fun_decl = {
  fname : string;
  params : string list;
  body : expr;
}

type boundary_space = Bs_strip | Bs_preserve

type prolog = {
  ordering : ordering_mode option;   (* declare ordering ... *)
  boundary_space : boundary_space;   (* declare boundary-space ...; default strip *)
  functions : fun_decl list;
}

type query = {
  prolog : prolog;
  body : expr;
}
