(** Normalization J·K: surface AST → XQuery Core (paper, Section 2.2).

    Besides the standard lowering (path predicates → FLWOR + positional
    machinery, EBV insertion, constructor content conversion, user
    function inlining), this pass implements the paper's
    order-indifference rules:

    {ul
    {- QUANT — [some]/[every] domains are wrapped in [fn:unordered()],
       in either ordering mode;}
    {- the general-comparison rule — both operands wrapped;}
    {- FN:COUNT and its siblings — arguments of the order-indifferent
       built-ins ([count], [sum], [avg], [max], [min], [empty], [exists],
       [boolean], [not], [distinct-values], [zero-or-one], [exactly-one],
       [one-or-more]) wrapped;}
    {- UNION — node-set operations wrapped under ordering mode unordered;}
    {- STEP — recorded as the [mode] field of [C_step]/[C_ddo] (the
       compiler turns it into Rule LOC#), and likewise the [mode] of
       [C_flwor] selects BIND vs BIND#.}}

    [unordered { }] / [ordered { }] and [declare ordering] switch the
    statically scoped mode under which sub-expressions normalize. *)

(** The built-in function table: (name, min arity, max arity, 1-based
    positions of order-indifferent arguments). *)
val builtins : (string * int * int * int list) list

(** Normalize a full query. [mode_override] forces an ordering mode
    regardless of the prolog — the benchmarks use it to run one query
    text under both modes. Raises [Basis.Err.Static_error] on unknown
    functions, arity violations, unbound context items, recursive
    user functions, and unsupported constructs. *)
val normalize_query :
  ?mode_override:Ast.ordering_mode -> Ast.query -> Core_ast.core

(** Normalize a standalone expression under a given mode (tests and
    examples). *)
val normalize_expr : ?mode:Ast.ordering_mode -> Ast.expr -> Core_ast.core
