(** Recursive-descent parser for the supported XQuery subset (see
    README/DESIGN for its extent). A single character cursor drives both
    query mode (whitespace/comment-skipping, contextual keywords — XQuery
    has no reserved words) and constructor mode (direct element
    constructors, where whitespace and braces are significant). *)

(** Raised on malformed queries, with a message and byte offset. *)
exception Syntax_error of string * int

(** Parse a complete query: prolog ([declare ordering],
    [declare function], [declare boundary-space]) plus body. *)
val parse_query : string -> Ast.query

(** Parse a standalone expression (no prolog); trailing input is an
    error. *)
val parse_expression : string -> Ast.expr
