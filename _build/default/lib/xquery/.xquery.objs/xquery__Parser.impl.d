lib/xquery/parser.ml: Ast Basis Buffer Char Format List String Uchar Xmldb
