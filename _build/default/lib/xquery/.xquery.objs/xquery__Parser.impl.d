lib/xquery/parser.ml: Ast Buffer Char Format List String Uchar Xmldb
