lib/xquery/core_ast.ml: Ast Format List Set String Xmldb
