lib/xquery/normalize.mli: Ast Core_ast
