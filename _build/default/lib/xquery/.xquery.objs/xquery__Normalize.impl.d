lib/xquery/normalize.ml: Ast Basis Core_ast Err List Option Printf String Xmldb
