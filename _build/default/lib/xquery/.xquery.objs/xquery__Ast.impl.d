lib/xquery/ast.ml: Xmldb
