(* Normalization J.K: surface AST -> XQuery Core (paper, Section 2.2).

   Besides the standard lowering (// expansion is already done by the
   parser; here: path predicates -> FLWOR + positional variables, EBV
   insertion, constructor content conversion, user-function inlining),
   this pass implements the paper's order-indifference rules:

     QUANT       some/every domains are wrapped in fn:unordered()
     (gen.cmp)   both operands of general comparisons are wrapped
     FN:COUNT    the arguments of order-indifferent built-ins (count, sum,
                 avg, max, min, empty, exists, boolean, not,
                 distinct-values, zero-or-one, exactly-one) are wrapped
     UNION       under ordering mode unordered, node-set operations are
                 wrapped (Rule UNION and its intersect/except analogues)
     STEP        is recorded as the [mode] field of C_step/C_ddo — the
                 compiler turns it into LOC# (Figure 7); likewise the
                 [mode] field of C_flwor selects BIND vs BIND#.

   unordered { e } / ordered { e } and "declare ordering" simply switch the
   statically-scoped mode under which sub-expressions normalize. *)

open Ast
open Core_ast
open Basis

type env = {
  mode : ordering_mode;
  boundary_space : boundary_space;
  ctx : string option;        (* variable holding the context item *)
  pos : string option;        (* variable holding fn:position() *)
  last : string option;       (* variable holding fn:last() *)
  funs : (string * fun_decl) list;
  inlining : string list;     (* for recursion detection *)
  gensym : int ref;
}

let initial_env ?(mode = Ordered) ?(boundary_space = Bs_strip) funs =
  { mode; boundary_space; ctx = None; pos = None; last = None;
    funs = List.map (fun f -> (f.fname, f)) funs;
    inlining = []; gensym = ref 0 }

(* Generated names use '#' which cannot appear in surface variable names,
   so they can never capture user variables. *)
let fresh env base =
  incr env.gensym;
  Printf.sprintf "#%s%d" base !(env.gensym)

(* ---------------------------------------------------------------- built-ins *)

(* (name, min arity, max arity, 1-based positions of order-indifferent
   arguments that get an fn:unordered() wrapper) *)
let builtins =
  [ ("doc", 1, 1, []);
    ("count", 1, 1, [ 1 ]);
    ("sum", 1, 1, [ 1 ]);
    ("avg", 1, 1, [ 1 ]);
    ("max", 1, 1, [ 1 ]);
    ("min", 1, 1, [ 1 ]);
    ("empty", 1, 1, [ 1 ]);
    ("exists", 1, 1, [ 1 ]);
    ("not", 1, 1, [ 1 ]);
    ("boolean", 1, 1, [ 1 ]);
    ("distinct-values", 1, 1, [ 1 ]);
    ("zero-or-one", 1, 1, [ 1 ]);
    ("exactly-one", 1, 1, [ 1 ]);
    ("one-or-more", 1, 1, [ 1 ]);
    ("data", 1, 1, []);
    ("string", 1, 1, []);
    ("string-length", 1, 1, []);
    ("normalize-space", 1, 1, []);
    ("concat", 2, max_int, []);
    ("contains", 2, 2, []);
    ("starts-with", 2, 2, []);
    ("string-join", 2, 2, []);
    ("number", 1, 1, []);
    ("reverse", 1, 1, []);
    ("subsequence", 2, 3, []);
    ("round", 1, 1, []);
    ("floor", 1, 1, []);
    ("ceiling", 1, 1, []);
    ("abs", 1, 1, []);
    ("name", 1, 1, []);
    ("local-name", 1, 1, []);
    ("true", 0, 0, []);
    ("false", 0, 0, []);
    ("substring", 2, 3, []);
    ("upper-case", 1, 1, []);
    ("lower-case", 1, 1, []);
    ("ends-with", 2, 2, []);
    ("substring-before", 2, 2, []);
    ("substring-after", 2, 2, []);
    ("translate", 3, 3, []);
    ("remove", 2, 2, []);
    ("insert-before", 3, 3, []);
    ("error", 0, 2, []);
    ("fs:ebv", 1, 1, []);
    ("fs:joinws", 1, 1, []);
    ("fs:serialize-seq", 1, 1, []);
  ]

let strip_fn name =
  if String.length name > 3 && String.sub name 0 3 = "fn:" then
    String.sub name 3 (String.length name - 3)
  else name

(* ------------------------------------------------------- static analysis *)

(* Does [e] call fn:last() relative to the *current* context (i.e. not
   inside a nested predicate, which rebinds last)? *)
let rec uses_last (e : expr) =
  match e with
  | E_call (n, []) when strip_fn n = "last" -> true
  | E_call (_, args) -> List.exists uses_last args
  | E_axis_step (_, _, _preds) -> false (* nested predicate: its own last *)
  | E_filter (b, _preds) -> uses_last b
  | E_slash (a, b) -> uses_last a || uses_last b
  | E_int _ | E_dec _ | E_str _ | E_var _ | E_context_item -> false
  | E_seq es -> List.exists uses_last es
  | E_flwor f ->
    List.exists
      (fun c ->
         match c with
         | For_clause { domain; _ } -> uses_last domain
         | Let_clause { def; _ } -> uses_last def
         | Where_clause w -> uses_last w)
      f.clauses
    || List.exists (fun o -> uses_last o.key) f.order_by
    || uses_last f.return_
  | E_quantified (_, bs, body) ->
    List.exists (fun (_, d) -> uses_last d) bs || uses_last body
  | E_if (a, b, c) -> uses_last a || uses_last b || uses_last c
  | E_or (a, b) | E_and (a, b)
  | E_general_cmp (_, a, b) | E_value_cmp (_, a, b) | E_node_cmp (_, a, b)
  | E_range (a, b) | E_arith (_, a, b)
  | E_union (a, b) | E_intersect (a, b) | E_except (a, b) ->
    uses_last a || uses_last b
  | E_unary_minus a | E_ordered a | E_unordered a
  | E_text_computed a | E_comment_computed a | E_doc_computed a -> uses_last a
  | E_elem_direct (_, attrs, content) ->
    List.exists
      (fun (_, ps) ->
         List.exists (function Ap_expr e' -> uses_last e' | Ap_text _ -> false) ps)
      attrs
    || List.exists
         (function
           | Ast.C_expr e' | Ast.C_elem e' -> uses_last e'
           | Ast.C_text _ -> false)
         content
  | E_elem_computed (n, b) | E_attr_computed (n, b) | E_pi_computed (n, b) ->
    (match n with Name_computed e' -> uses_last e' | Name_const _ -> false)
    || uses_last b
  | E_instance_of (e', _) | E_treat_as (e', _)
  | E_castable_as (e', _, _) | E_cast_as (e', _, _) -> uses_last e'
  | E_typeswitch (e', cases, (_, dflt)) ->
    uses_last e'
    || List.exists (fun c -> uses_last c.tbody) cases
    || uses_last dflt

(* Is the predicate a statically numeric expression (position test)? *)
let rec numeric_static (e : expr) =
  match e with
  | E_int _ | E_dec _ -> true
  | E_call (n, []) -> (match strip_fn n with "last" | "position" -> true | _ -> false)
  | E_arith (_, a, b) -> numeric_static a && numeric_static b
  | E_unary_minus a -> numeric_static a
  | _ -> false

(* Does [e] statically evaluate to a single xs:boolean? Used to avoid
   redundant fs:ebv wrappers. *)
let static_boolean (e : expr) =
  match e with
  | E_general_cmp _ | E_value_cmp _ | E_node_cmp _ | E_or _ | E_and _
  | E_quantified _ | E_instance_of _ | E_castable_as _ -> true
  | E_call (n, _) ->
    (match strip_fn n with
     | "not" | "boolean" | "empty" | "exists" | "contains" | "starts-with"
     | "ends-with" | "deep-equal" | "true" | "false" -> true
     | _ -> false)
  | _ -> false

let all_ws s =
  let ok = ref true in
  String.iter (fun c -> if not (c = ' ' || c = '\t' || c = '\n' || c = '\r') then ok := false) s;
  !ok

(* Canonicalize an xs: atomic-type local name; static error on unknown
   ones. The numeric subtypes collapse onto integer/double (dynamic
   typing, see DESIGN.md). *)
let atomic_type_name name =
  match name with
  | "integer" | "long" | "int" | "short" | "byte" | "nonNegativeInteger"
  | "positiveInteger" | "negativeInteger" | "nonPositiveInteger"
  | "unsignedLong" | "unsignedInt" | "unsignedShort" | "unsignedByte" ->
    "integer"
  | "decimal" | "double" | "float" -> "double"
  | "string" | "normalizedString" | "token" -> "string"
  | "boolean" -> "boolean"
  | "untypedAtomic" -> "untypedAtomic"
  | "anyAtomicType" -> "anyAtomicType"
  | other -> Err.static "unsupported atomic type xs:%s" other

let check_seq_type (t : seq_type) =
  match t with
  | St_empty -> t
  | St (It_atomic n, occ) -> St (It_atomic (atomic_type_name n), occ)
  | St _ -> t

(* ----------------------------------------------------------- normalization *)

let rec norm env (e : expr) : core =
  match e with
  | E_int n -> C_int n
  | E_dec f -> C_dbl f
  | E_str s -> C_str s
  | E_var v -> C_var v
  | E_context_item ->
    (match env.ctx with
     | Some v -> C_var v
     | None -> Err.static "no context item is defined here ('.')")
  | E_seq [] -> C_empty
  | E_seq [ e' ] -> norm env e'
  | E_seq es -> C_seq (List.map (norm env) es)
  | E_flwor f -> norm_flwor env f
  | E_quantified (q, bindings, body) ->
    (* Rule QUANT: domains are order-indifferent in either mode *)
    List.fold_right
      (fun (var, domain) acc ->
         C_quant { q; var; domain = C_unordered (norm env domain); body = acc })
      bindings (ebv env body)
  | E_if (c, t, e2) -> C_if (ebv env c, norm env t, norm env e2)
  | E_or (a, b) -> C_or (ebv env a, ebv env b)
  | E_and (a, b) -> C_and (ebv env a, ebv env b)
  | E_general_cmp (op, a, b) ->
    (* general comparisons have existential semantics; their operand order
       is unobservable (paper, Section 2.2) *)
    C_gencmp (op, C_unordered (norm env a), C_unordered (norm env b))
  | E_value_cmp (op, a, b) -> C_valcmp (op, norm env a, norm env b)
  | E_node_cmp (op, a, b) -> C_nodecmp (op, norm env a, norm env b)
  | E_range (a, b) -> C_range (norm env a, norm env b)
  | E_arith (op, a, b) -> C_arith (op, norm env a, norm env b)
  | E_unary_minus a -> C_neg (norm env a)
  | E_union (a, b) ->
    let c = C_union (norm env a, norm env b, env.mode) in
    if env.mode = Unordered then C_unordered c else c (* Rule UNION *)
  | E_intersect (a, b) ->
    let c = C_intersect (norm env a, norm env b, env.mode) in
    if env.mode = Unordered then C_unordered c else c
  | E_except (a, b) ->
    let c = C_except (norm env a, norm env b, env.mode) in
    if env.mode = Unordered then C_unordered c else c
  | E_slash (e1, e2) -> norm_slash env e1 e2
  | E_axis_step (axis, test, preds) ->
    (* a relative step: context item is the implicit input *)
    let input =
      match env.ctx with
      | Some v -> C_var v
      | None -> Err.static "axis step with no context item"
    in
    let base = C_step { input; axis; test; mode = env.mode } in
    norm_preds ~reverse:(Xmldb.Axis.is_reverse axis) env base preds
  | E_filter (e', preds) -> norm_preds env (norm env e') preds
  | E_call (name, args) -> norm_call env name args
  | E_ordered e' -> norm { env with mode = Ordered } e'
  | E_unordered e' -> norm { env with mode = Unordered } e'
  | E_elem_direct (name, attrs, content) ->
    let attr_cores =
      List.map
        (fun (aname, pieces) ->
           C_attr { name = C_qname aname; value = avt env pieces })
        attrs
    in
    let content_cores =
      List.filter_map
        (fun c ->
           match c with
           | Ast.C_text s ->
             if all_ws s && env.boundary_space = Bs_strip then None
             else Some (Core_ast.C_text (C_str s))
           | Ast.C_expr e' -> Some (C_textify (norm env e'))
           | Ast.C_elem e' -> Some (norm env e'))
        content
    in
    C_elem
      { name = C_qname name;
        content =
          (match attr_cores @ content_cores with
           | [] -> C_empty
           | [ one ] -> one
           | many -> C_seq many) }
  | E_elem_computed (nspec, body) ->
    C_elem { name = name_core env nspec; content = C_textify (norm env body) }
  | E_attr_computed (nspec, body) ->
    C_attr { name = name_core env nspec;
             value = C_call ("fs:joinws", [ norm env body ]) }
  | E_text_computed body -> C_text (C_call ("fs:joinws", [ norm env body ]))
  | E_comment_computed body -> C_comment (C_call ("fs:joinws", [ norm env body ]))
  | E_pi_computed (nspec, body) ->
    let target =
      match nspec with
      | Name_const q -> C_str (Xmldb.Qname.to_string q)
      | Name_computed e' -> C_call ("string", [ norm env e' ])
    in
    C_pi { target; value = C_call ("fs:joinws", [ norm env body ]) }
  | E_doc_computed _ ->
    Err.static "document { } constructors are not supported"
  | E_instance_of (e', t) ->
    C_instance { input = norm env e'; ty = check_seq_type t }
  | E_treat_as (e', t) ->
    C_treat { input = norm env e'; ty = check_seq_type t }
  | E_castable_as (e', ty, optional) ->
    C_castable { input = norm env e'; ty = atomic_type_name ty; optional }
  | E_cast_as (e', ty, optional) ->
    C_cast { input = norm env e'; ty = atomic_type_name ty; optional }
  | E_typeswitch (e', cases, (dvar, dflt)) ->
    (* let $sw := e; if ($sw instance of t1) then (let $v := $sw ...) ... *)
    let sw = fresh env "switch" in
    let bind_case var body =
      match var with
      | None -> norm env body
      | Some v ->
        C_flwor
          { clauses = [ CLet { var = v; def = C_var sw } ];
            order_by = []; return_ = norm env body; mode = env.mode }
    in
    let rec chain = function
      | [] -> bind_case dvar dflt
      | c :: rest ->
        C_if
          (C_instance { input = C_var sw; ty = check_seq_type c.ttype },
           bind_case c.tvar c.tbody,
           chain rest)
    in
    C_flwor
      { clauses = [ CLet { var = sw; def = norm env e' } ];
        order_by = []; return_ = chain cases; mode = env.mode }

and name_core env = function
  | Name_const q -> C_qname q
  | Name_computed e -> norm env e

(* Attribute value template: concatenation of literal text and
   space-joined atomizations of embedded expressions. *)
and avt env pieces =
  let cores =
    List.map
      (fun p ->
         match p with
         | Ap_text s -> C_str s
         | Ap_expr e -> C_call ("fs:joinws", [ norm env e ]))
      pieces
  in
  match cores with
  | [] -> C_str ""
  | [ one ] -> one
  | first :: rest ->
    List.fold_left (fun acc c -> C_call ("concat", [ acc; c ])) first rest

and ebv env e =
  if static_boolean e then norm env e
  else C_call ("fs:ebv", [ norm env e ])

and norm_flwor env (f : Ast.flwor) =
  let clauses =
    List.map
      (fun c ->
         match c with
         | For_clause { var; pos_var; domain } ->
           CFor { var; pos_var; domain = norm env domain; reverse_pos = false }
         | Let_clause { var; def } -> CLet { var; def = norm env def }
         | Where_clause w -> CWhere (ebv env w))
      f.clauses
  in
  let order_by =
    List.map (fun o -> (norm env o.key, o.dir, o.empty)) f.order_by
  in
  C_flwor { clauses; order_by; return_ = norm env f.return_; mode = env.mode }

and norm_slash env e1 e2 =
  match e2 with
  | E_axis_step (axis, test, []) ->
    (* the common case: Rule LOC / LOC# applies directly *)
    C_step { input = norm env e1; axis; test; mode = env.mode }
  | E_axis_step (axis, test, preds) ->
    (* predicates count positions per context node of e1 *)
    let dot = fresh env "dot" in
    let step = C_step { input = C_var dot; axis; test; mode = env.mode } in
    let filtered =
      norm_preds ~reverse:(Xmldb.Axis.is_reverse axis)
        { env with ctx = Some dot } step preds
    in
    C_ddo
      { input =
          C_flwor
            { clauses =
                [ CFor { var = dot; pos_var = None; reverse_pos = false;
                         domain = C_unordered (norm env e1) } ];
              order_by = [];
              return_ = filtered;
              (* iteration order is irrelevant: the surrounding ddo
                 re-establishes document order *)
              mode = Unordered };
        mode = env.mode }
  | _ ->
    (* general right-hand side, e.g. $t/(c|d) *)
    let dot = fresh env "dot" in
    C_ddo
      { input =
          C_flwor
            { clauses =
                [ CFor { var = dot; pos_var = None; reverse_pos = false;
                         domain = C_unordered (norm env e1) } ];
              order_by = [];
              return_ = norm { env with ctx = Some dot } e2;
              mode = Unordered };
        mode = env.mode }

(* e[p1][p2]... — each predicate filters the previous result; positions are
   sequence positions of that intermediate result ([reverse]: reverse
   document order, for predicates directly on a reverse axis step). *)
and norm_preds ?(reverse = false) env base preds =
  (* every predicate attached to a reverse-axis step counts positions in
     reverse document order: ancestor::*[p][2] is the second-nearest
     ancestor among those satisfying p *)
  List.fold_left (fun acc p -> norm_one_pred ~reverse env acc p) base preds

and norm_one_pred ~reverse env base pred =
  let needs_last = uses_last pred in
  let seqv = fresh env "seq" in
  let dotv = fresh env "dot" in
  let posv = fresh env "pos" in
  let lastv = fresh env "last" in
  let penv =
    { env with
      ctx = Some dotv;
      pos = Some posv;
      last = (if needs_last then Some lastv else None) }
  in
  let cond =
    if numeric_static pred then
      (* numeric predicate: position() = value *)
      C_valcmp (Veq, C_var posv, norm penv pred)
    else ebv penv pred
  in
  let clauses =
    [ CLet { var = seqv; def = base } ]
    @ (if needs_last then
         [ CLet { var = lastv;
                  def = C_call ("count", [ C_unordered (C_var seqv) ]) } ]
       else [])
    @ [ CFor { var = dotv; pos_var = Some posv; domain = C_var seqv;
               reverse_pos = reverse };
        CWhere cond ]
  in
  C_flwor { clauses; order_by = []; return_ = C_var dotv; mode = env.mode }

and norm_call env name args =
  let name = strip_fn name in
  (* context-dependent functions default their argument to the context
     item when called with arity 0 *)
  let args =
    if args = []
       && List.mem name
            [ "name"; "local-name"; "string"; "data"; "number";
              "string-length"; "normalize-space"; "root" ]
    then [ E_context_item ]
    else args
  in
  (* user-declared functions are inlined *)
  match List.assoc_opt name env.funs with
  | Some f ->
    if List.mem name env.inlining then
      Err.static "recursive functions are not supported (%s)" name;
    if List.length f.params <> List.length args then
      Err.static "%s expects %d arguments, got %d" name
        (List.length f.params) (List.length args);
    let lets =
      List.map2
        (fun p a -> CLet { var = p; def = norm env a })
        f.params args
    in
    let benv = { env with inlining = name :: env.inlining; ctx = None } in
    if lets = [] then norm benv f.body
    else
      C_flwor
        { clauses = lets; order_by = []; return_ = norm benv f.body;
          mode = env.mode }
  | None ->
    (match name with
     | "position" ->
       (match env.pos with
        | Some v -> C_var v
        | None -> Err.static "fn:position() outside of a predicate")
     | "last" ->
       (match env.last with
        | Some v -> C_var v
        | None -> Err.static "fn:last() outside of a predicate")
     | "unordered" ->
       (match args with
        | [ a ] -> C_unordered (norm env a)
        | _ -> Err.static "fn:unordered expects 1 argument")
     | "id" ->
       (match args with
        | [ vals; ctx ] ->
          let c =
            C_call ("id", [ C_unordered (norm env vals); norm env ctx ])
          in
          (* Rule STEP analogue: fn:id derives its result order from
             document order; under ordering mode unordered that order is
             free *)
          if env.mode = Unordered then C_unordered c else c
        | _ ->
          Err.static "fn:id expects 2 arguments here (idrefs, context node)")
     | "root" ->
       (* fn:root($n) == ($n/ancestor-or-self::node())[last()] *)
       (match args with
        | [ a ] ->
          norm env
            (E_filter
               (E_slash
                  (a, E_axis_step (Xmldb.Axis.Ancestor_or_self, Nt_kind_node, [])),
                [ E_call ("last", []) ]))
        | _ -> Err.static "fn:root expects 1 argument")
     | "deep-equal" ->
       (* pragmatic deep equality: sequences are deep-equal iff their
          XML serializations coincide item-wise (see DESIGN.md) *)
       (match args with
        | [ a; b ] ->
          C_valcmp
            (Veq,
             C_call ("fs:serialize-seq", [ norm env a ]),
             C_call ("fs:serialize-seq", [ norm env b ]))
        | _ -> Err.static "fn:deep-equal expects 2 arguments")
     | _ ->
       (match
          List.find_opt (fun (n, _, _, _) -> String.equal n name) builtins
        with
        | None -> Err.static "unknown function %s()" name
        | Some (_, amin, amax, unord) ->
          let n = List.length args in
          if n < amin || n > amax then
            Err.static "%s() called with %d arguments" name n;
          let cargs =
            List.mapi
              (fun i a ->
                 let c = norm env a in
                 if List.mem (i + 1) unord then C_unordered c else c)
              args
          in
          (* n-ary concat folds into binary concatenations *)
          if name = "concat" then
            match cargs with
            | first :: rest ->
              List.fold_left
                (fun acc c -> C_call ("concat", [ acc; c ]))
                (C_call ("string", [ first ]))
                rest
            | [] -> assert false
          else C_call (name, cargs)))

(* ------------------------------------------------------------- entry point *)

(* [mode_override] forces an ordering mode regardless of the prolog's
   "declare ordering" — used by the benchmarks to run the same query text
   under both modes. *)
let normalize_query ?mode_override (q : Ast.query) : core =
  let mode =
    match mode_override with
    | Some m -> m
    | None -> Option.value ~default:Ordered q.prolog.ordering
  in
  let env =
    initial_env ~mode ~boundary_space:q.prolog.boundary_space
      q.prolog.functions
  in
  norm env q.body

(* Normalize a standalone expression under a given mode (tests, examples). *)
let normalize_expr ?(mode = Ordered) e =
  norm (initial_env ~mode []) e
