(* XQuery Core: the normalized dialect the compiler consumes. Normalization
   (J.K in the paper, Section 2.2) has already:
     - expanded // and path predicates into FLWOR + positional machinery,
     - rewritten general comparisons and quantifier domains with
       fn:unordered() wrappers (Rules QUANT, the general-comparison rule),
     - wrapped the arguments of order-indifferent built-ins (Rule FN:COUNT
       and its siblings),
     - inlined user functions,
     - recorded the statically known ordering mode on every order-relevant
       construct (steps, FLWOR blocks, node-set operations) — this is what
       lets the compiler choose LOC vs LOC# and BIND vs BIND# (Figure 7).

   Unlike the W3C Core, FLWOR blocks are kept structured (clause list +
   order by): Section 2.2 of the paper shows that fully decomposing them
   loses the freedom that ordering mode unordered grants, so the compiler
   wants them whole. *)

type mode = Ast.ordering_mode

type core =
  | C_int of int
  | C_dbl of float
  | C_str of string
  | C_qname of Xmldb.Qname.t
  | C_empty                                  (* () *)
  | C_var of string
  | C_seq of core list                       (* sequence concatenation *)
  | C_flwor of flwor
  | C_quant of { q : Ast.quantifier; var : string; domain : core; body : core }
  | C_if of core * core * core               (* condition already EBV-wrapped *)
  | C_step of { input : core; axis : Xmldb.Axis.t; test : Ast.node_test; mode : mode }
  | C_ddo of { input : core; mode : mode }   (* distinct-document-order *)
  | C_unordered of core                      (* fn:unordered(e) *)
  | C_gencmp of Ast.general_cmp * core * core
  | C_valcmp of Ast.value_cmp * core * core
  | C_nodecmp of Ast.node_cmp * core * core
  | C_arith of Ast.arith * core * core
  | C_neg of core
  | C_and of core * core                     (* operands already EBV-wrapped *)
  | C_or of core * core
  | C_union of core * core * mode
  | C_intersect of core * core * mode
  | C_except of core * core * mode
  | C_range of core * core                   (* e1 to e2 *)
  | C_call of string * core list             (* built-ins only *)
  | C_elem of { name : core; content : core }
  | C_attr of { name : core; value : core }
  | C_text of core
  | C_comment of core
  | C_pi of { target : core; value : core }
  | C_textify of core   (* fs:item-sequence-to-node-sequence: atomic runs
                           become text nodes (space-separated); nodes pass *)
  | C_instance of { input : core; ty : Ast.seq_type }
  | C_treat of { input : core; ty : Ast.seq_type }
  | C_castable of { input : core; ty : string; optional : bool }
  | C_cast of { input : core; ty : string; optional : bool }

and flwor = {
  clauses : clause list;
  order_by : (core * Ast.sort_dir * Ast.empty_order) list;
  return_ : core;
  mode : mode;  (* ordering mode in effect at this FLWOR *)
}

and clause =
  | CFor of { var : string; pos_var : string option; domain : core;
              reverse_pos : bool
              (* positional predicates on reverse axes number the binding
                 sequence in reverse document order *) }
  | CLet of { var : string; def : core }
  | CWhere of core                           (* already EBV-wrapped *)

(* Free variables (used for loop-invariant hoisting in the compiler). *)
let free_vars e =
  let module S = Set.Make (String) in
  let rec go bound acc e =
    match e with
    | C_var v -> if S.mem v bound then acc else S.add v acc
    | C_int _ | C_dbl _ | C_str _ | C_qname _ | C_empty -> acc
    | C_seq es -> List.fold_left (go bound) acc es
    | C_flwor f ->
      let bound, acc =
        List.fold_left
          (fun (bound, acc) cl ->
             match cl with
             | CFor { var; pos_var; domain; _ } ->
               let acc = go bound acc domain in
               let bound = S.add var bound in
               let bound =
                 match pos_var with Some p -> S.add p bound | None -> bound
               in
               (bound, acc)
             | CLet { var; def } ->
               let acc = go bound acc def in
               (S.add var bound, acc)
             | CWhere c -> (bound, go bound acc c))
          (bound, acc) f.clauses
      in
      let acc =
        List.fold_left (fun acc (k, _, _) -> go bound acc k) acc f.order_by
      in
      go bound acc f.return_
    | C_quant { var; domain; body; _ } ->
      let acc = go bound acc domain in
      go (S.add var bound) acc body
    | C_if (c, t, e') -> go bound (go bound (go bound acc c) t) e'
    | C_step { input; _ } -> go bound acc input
    | C_ddo { input; _ } -> go bound acc input
    | C_unordered e' | C_neg e' | C_text e' | C_comment e' | C_textify e' ->
      go bound acc e'
    | C_instance { input; _ } | C_treat { input; _ }
    | C_castable { input; _ } | C_cast { input; _ } -> go bound acc input
    | C_gencmp (_, a, b') | C_valcmp (_, a, b') | C_nodecmp (_, a, b')
    | C_arith (_, a, b') | C_and (a, b') | C_or (a, b') | C_range (a, b') ->
      go bound (go bound acc a) b'
    | C_union (a, b', _) | C_intersect (a, b', _) | C_except (a, b', _) ->
      go bound (go bound acc a) b'
    | C_call (_, args) -> List.fold_left (go bound) acc args
    | C_elem { name; content } -> go bound (go bound acc name) content
    | C_attr { name; value } -> go bound (go bound acc name) value
    | C_pi { target; value } -> go bound (go bound acc target) value
  in
  go S.empty S.empty e

(* Pretty printer (debugging / golden tests). *)
let rec pp fmt e =
  let open Format in
  match e with
  | C_int i -> fprintf fmt "%d" i
  | C_dbl f -> fprintf fmt "%g" f
  | C_str s -> fprintf fmt "%S" s
  | C_qname q -> fprintf fmt "qname(%s)" (Xmldb.Qname.to_string q)
  | C_empty -> fprintf fmt "()"
  | C_var v -> fprintf fmt "$%s" v
  | C_seq es ->
    fprintf fmt "(@[%a@])"
      (pp_print_list ~pp_sep:(fun f () -> fprintf f ",@ ") pp) es
  | C_flwor f ->
    fprintf fmt "@[<v 2>flwor[%s]{"
      (match f.mode with Ast.Ordered -> "ord" | Ast.Unordered -> "unord");
    List.iter
      (fun cl ->
         match cl with
         | CFor { var; pos_var; domain; _ } ->
           fprintf fmt "@ for $%s%s in %a" var
             (match pos_var with Some p -> " at $" ^ p | None -> "")
             pp domain
         | CLet { var; def } -> fprintf fmt "@ let $%s := %a" var pp def
         | CWhere c -> fprintf fmt "@ where %a" pp c)
      f.clauses;
    if f.order_by <> [] then begin
      fprintf fmt "@ order by ";
      List.iter
        (fun (k, d, _) ->
           fprintf fmt "%a%s " pp k
             (match d with Ast.Ascending -> "" | Ast.Descending -> " desc"))
        f.order_by
    end;
    fprintf fmt "@ return %a}@]" pp f.return_
  | C_quant { q; var; domain; body } ->
    fprintf fmt "%s $%s in %a satisfies %a"
      (match q with Ast.Some_q -> "some" | Ast.Every_q -> "every")
      var pp domain pp body
  | C_if (c, t, e') -> fprintf fmt "if (%a) then %a else %a" pp c pp t pp e'
  | C_step { input; axis; test = _; mode } ->
    fprintf fmt "step[%s,%s](%a)" (Xmldb.Axis.to_string axis)
      (match mode with Ast.Ordered -> "ord" | Ast.Unordered -> "unord")
      pp input
  | C_ddo { input; mode } ->
    fprintf fmt "ddo[%s](%a)"
      (match mode with Ast.Ordered -> "ord" | Ast.Unordered -> "unord")
      pp input
  | C_unordered e' -> fprintf fmt "fn:unordered(%a)" pp e'
  | C_gencmp (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp a
      (match op with Ast.Geq -> "=" | Ast.Gne -> "!=" | Ast.Glt -> "<"
                   | Ast.Gle -> "<=" | Ast.Ggt -> ">" | Ast.Gge -> ">=")
      pp b
  | C_valcmp (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp a
      (match op with Ast.Veq -> "eq" | Ast.Vne -> "ne" | Ast.Vlt -> "lt"
                   | Ast.Vle -> "le" | Ast.Vgt -> "gt" | Ast.Vge -> "ge")
      pp b
  | C_nodecmp (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp a
      (match op with Ast.Is -> "is" | Ast.Precedes -> "<<" | Ast.Follows -> ">>")
      pp b
  | C_arith (op, a, b) ->
    fprintf fmt "(%a %s %a)" pp a
      (match op with Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*"
                   | Ast.Div -> "div" | Ast.Idiv -> "idiv" | Ast.Mod -> "mod")
      pp b
  | C_neg e' -> fprintf fmt "-(%a)" pp e'
  | C_and (a, b) -> fprintf fmt "(%a and %a)" pp a pp b
  | C_or (a, b) -> fprintf fmt "(%a or %a)" pp a pp b
  | C_union (a, b, _) -> fprintf fmt "(%a | %a)" pp a pp b
  | C_intersect (a, b, _) -> fprintf fmt "(%a intersect %a)" pp a pp b
  | C_except (a, b, _) -> fprintf fmt "(%a except %a)" pp a pp b
  | C_range (a, b) -> fprintf fmt "(%a to %a)" pp a pp b
  | C_call (f, args) ->
    fprintf fmt "%s(@[%a@])" f
      (pp_print_list ~pp_sep:(fun f' () -> fprintf f' ",@ ") pp) args
  | C_elem { name; content } -> fprintf fmt "element{%a}{%a}" pp name pp content
  | C_attr { name; value } -> fprintf fmt "attribute{%a}{%a}" pp name pp value
  | C_text e' -> fprintf fmt "text{%a}" pp e'
  | C_comment e' -> fprintf fmt "comment{%a}" pp e'
  | C_pi { target; value } -> fprintf fmt "pi{%a}{%a}" pp target pp value
  | C_textify e' -> fprintf fmt "fs:textify(%a)" pp e'
  | C_instance { input; _ } -> fprintf fmt "(%a instance of _)" pp input
  | C_treat { input; _ } -> fprintf fmt "(%a treat as _)" pp input
  | C_castable { input; ty; _ } -> fprintf fmt "(%a castable as xs:%s)" pp input ty
  | C_cast { input; ty; _ } -> fprintf fmt "(%a cast as xs:%s)" pp input ty

let to_string e = Format.asprintf "%a" pp e
