(* Bottom-up plan property inference:

     - static schema (column set) of every operator,
     - constant columns (every row carries the same, known value),
     - "arbitrary" columns: columns whose values were produced by the
       rowid operator # and therefore carry no semantic order information.

   This is the property framework the paper's wrap-up (Section 7) uses to
   degrade the residual %pos1:<bind,pos>||iter1 of Figure 9 to a free
   numbering: iter1 and pos are found constant, bind is found arbitrary,
   which empties %'s order criteria. *)

open Basis
module A = Algebra.Plan
module Value = Algebra.Value
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type props = {
  schema : SSet.t;
  consts : Value.t SMap.t;   (* column -> the value it always carries *)
  arbitrary : SSet.t;        (* columns born from # (rowid) *)
}

type t = (int, props) Hashtbl.t

let props tbl (n : A.node) : props =
  match Hashtbl.find_opt tbl n.A.id with
  | Some p -> p
  | None -> Err.internal "properties: node %d not inferred" n.A.id

let schema_list tbl n = SSet.elements (props tbl n).schema

(* restrict a map/set to a column set *)
let restrict_map m cols = SMap.filter (fun c _ -> SSet.mem c cols) m
let restrict_set s cols = SSet.inter s cols

let infer (root : A.node) : t =
  let tbl : t = Hashtbl.create 64 in
  let get n = props tbl n in
  List.iter
    (fun (n : A.node) ->
       let p =
         match n.A.op with
         | A.Lit { schema; rows } ->
           let schema_set = SSet.of_list (Array.to_list schema) in
           let consts =
             match rows with
             | [ row ] ->
               Array.to_seq schema
               |> Seq.mapi (fun i c -> (c, row.(i)))
               |> SMap.of_seq
             | _ -> SMap.empty
           in
           { schema = schema_set; consts; arbitrary = SSet.empty }
         | A.Project { input; cols } ->
           let pi = get input in
           let schema = SSet.of_list (List.map fst cols) in
           let consts =
             List.fold_left
               (fun acc (nw, src) ->
                  match SMap.find_opt src pi.consts with
                  | Some v -> SMap.add nw v acc
                  | None -> acc)
               SMap.empty cols
           in
           let arbitrary =
             List.fold_left
               (fun acc (nw, src) ->
                  if SSet.mem src pi.arbitrary then SSet.add nw acc else acc)
               SSet.empty cols
           in
           { schema; consts; arbitrary }
         | A.Select { input; _ } | A.Distinct { input } -> get input
         | A.Semijoin { left; _ } | A.Antijoin { left; _ } -> get left
         | A.Join { left; right; _ } | A.Thetajoin { left; right; _ }
         | A.Cross { left; right } ->
           let pl = get left and pr = get right in
           { schema = SSet.union pl.schema pr.schema;
             consts =
               SMap.union (fun _ v _ -> Some v) pl.consts pr.consts;
             arbitrary = SSet.union pl.arbitrary pr.arbitrary }
         | A.Union { left; right } ->
           let pl = get left and pr = get right in
           (* a column is constant after union iff constant with the same
              value on both sides *)
           let consts =
             SMap.merge
               (fun _ a b ->
                  match (a, b) with
                  | Some va, Some vb when Value.equal va vb -> Some va
                  | _ -> None)
               pl.consts pr.consts
           in
           { schema = pl.schema;
             consts;
             arbitrary = SSet.inter pl.arbitrary pr.arbitrary }
         | A.Rownum { input; res; _ } ->
           let pi = get input in
           { pi with schema = SSet.add res pi.schema }
         | A.Rowid { input; res } ->
           let pi = get input in
           { schema = SSet.add res pi.schema;
             consts = pi.consts;
             arbitrary = SSet.add res pi.arbitrary }
         | A.Attach { input; res; value } ->
           let pi = get input in
           { schema = SSet.add res pi.schema;
             consts = SMap.add res value pi.consts;
             arbitrary = pi.arbitrary }
         | A.Fun1 { input; res; _ } | A.Fun2 { input; res; _ }
         | A.Fun3 { input; res; _ } ->
           let pi = get input in
           { pi with schema = SSet.add res pi.schema }
         | A.Aggr { input; res; part; _ } ->
           let pi = get input in
           let schema, keep =
             match part with
             | Some p -> (SSet.of_list [ p; res ], SSet.singleton p)
             | None -> (SSet.singleton res, SSet.empty)
           in
           (* group-key values are a subset of the input's *)
           { schema;
             consts = restrict_map pi.consts keep;
             arbitrary = restrict_set pi.arbitrary keep }
         | A.Step { input; _ } | A.Doc { input } | A.Textnode { input }
         | A.Commentnode { input } | A.Pinode { input } ->
           let pi = get input in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "item" ];
             consts = restrict_map pi.consts keep;
             arbitrary = restrict_set pi.arbitrary keep }
         | A.Id_lookup { context; _ } ->
           let pc = get context in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "item" ];
             consts = restrict_map pc.consts keep;
             arbitrary = restrict_set pc.arbitrary keep }
         | A.Elem { qnames; _ } | A.Attr { qnames; _ } ->
           let pq = get qnames in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "item" ];
             consts = restrict_map pq.consts keep;
             arbitrary = restrict_set pq.arbitrary keep }
         | A.Range { input; _ } | A.Textify { input } ->
           let pi = get input in
           let keep = SSet.singleton "iter" in
           { schema = SSet.of_list [ "iter"; "pos"; "item" ];
             consts = restrict_map pi.consts keep;
             arbitrary = restrict_set pi.arbitrary keep }
       in
       Hashtbl.replace tbl n.A.id p)
    (A.topo_order root);
  tbl
