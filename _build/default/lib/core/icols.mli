(** Column dependency analysis and plan simplification (paper,
    Section 4.1, plus the Section 4.2 / Section 7 rewrites it enables).

    Phase 1 walks the DAG top-down and infers, per operator, the set of
    strictly required columns — seeded at the root with [{pos, item}],
    the columns needed to serialize the query result (Figure 8).

    Phase 2 rebuilds the DAG bottom-up:
    {ul
    {- operators producing unrequired columns ([%], [#], [@], [fun]) are
       pruned — this cashes in the order indifference the Figure-7 rules
       introduced (Figure 6(b) → Figure 9);}
    {- projections narrow to the required columns and fuse;}
    {- rownum order criteria drop constant columns; a rownum left with
       only arbitrary (#-born) criteria and constant partitioning degrades
       into a free [#] (Section 7);}
    {- adjacent steps merge — [descendant-or-self::node()/child::nt]
       becomes [descendant::nt] — once no order-establishing operator
       remains between them (the Q6/Q7 "exceptional speedup");}
    {- [σ] over a comparison over a cross product fuses into a theta join
       (a lightweight form of Pathfinder's join recognition [9]).}} *)

module SSet : Set.S with type elt = string and type t = Set.Make(String).t

(** Phase 1: required-column sets per node id. *)
val required :
  Properties.t -> Algebra.Plan.node -> (int, SSet.t) Hashtbl.t

(** Phase 2: one bottom-up rewrite pass. *)
val rewrite :
  Algebra.Plan.builder -> Properties.t -> (int, SSet.t) Hashtbl.t ->
  Algebra.Plan.node -> Algebra.Plan.node

(** One analyze+rewrite round. *)
val optimize_once : Algebra.Plan.builder -> Algebra.Plan.node -> Algebra.Plan.node

(** Iterate {!optimize_once} to a fixpoint (at most [max_rounds]). *)
val optimize :
  ?max_rounds:int -> Algebra.Plan.builder -> Algebra.Plan.node -> Algebra.Plan.node
