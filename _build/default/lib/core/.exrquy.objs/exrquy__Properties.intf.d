lib/core/properties.mli: Algebra Map Set String
