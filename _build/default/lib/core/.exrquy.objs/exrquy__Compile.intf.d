lib/core/compile.mli: Algebra Xquery
