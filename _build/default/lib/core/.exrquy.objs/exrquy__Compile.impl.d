lib/core/compile.ml: Algebra Basis Err Float List Option Printf Set String Xmldb Xquery
