lib/core/icols.ml: Algebra Array Hashtbl List Option Properties Set String Xmldb
