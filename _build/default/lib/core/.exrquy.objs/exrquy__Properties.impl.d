lib/core/properties.ml: Algebra Array Basis Err Hashtbl List Map Seq Set String
