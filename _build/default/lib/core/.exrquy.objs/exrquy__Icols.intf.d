lib/core/icols.mli: Algebra Hashtbl Properties Set String
