(** Error discipline shared by every layer.

    Three exception classes partition all failures:
    {ul
    {- [Dynamic_error] — XQuery dynamic errors (the [err:XPDY]/[err:FORG]
       families): division by zero, cardinality violations, missing
       documents, invalid casts. Raised during evaluation.}
    {- [Static_error] — parse- and normalization-time errors (the
       [err:XPST] family): unknown functions, unbound context items,
       unsupported constructs.}
    {- [Internal_error] — a broken invariant of this implementation;
       always a bug, never a user error.}} *)

exception Dynamic_error of string
exception Static_error of string
exception Internal_error of string

(** [dynamic fmt ...] raises {!Dynamic_error} with a formatted message. *)
val dynamic : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [static fmt ...] raises {!Static_error} with a formatted message. *)
val static : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** [internal fmt ...] raises {!Internal_error} with a formatted message. *)
val internal : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Render one of the three errors for user display. Re-raises any other
    exception. *)
val to_string : exn -> string

(** [protect f] runs [f ()] and captures the three error classes as
    [Error message]; other exceptions propagate. *)
val protect : (unit -> 'a) -> ('a, string) result
