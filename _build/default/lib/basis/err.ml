(* Error discipline shared by every layer of the system.

   [Dynamic_error] corresponds to XQuery dynamic errors (the err:XPDY and
   err:FORG families); [Static_error] to parse/normalization-time errors
   (the err:XPST family); [Internal_error] flags broken invariants of our
   own making (a bug, never a user error). *)

exception Dynamic_error of string
exception Static_error of string
exception Internal_error of string

let dynamic fmt = Format.kasprintf (fun s -> raise (Dynamic_error s)) fmt
let static fmt = Format.kasprintf (fun s -> raise (Static_error s)) fmt
let internal fmt = Format.kasprintf (fun s -> raise (Internal_error s)) fmt

(* Render any of the three errors for user display; re-raises others. *)
let to_string = function
  | Dynamic_error m -> "dynamic error: " ^ m
  | Static_error m -> "static error: " ^ m
  | Internal_error m -> "internal error (please report): " ^ m
  | e -> raise e

let protect f = match f () with
  | v -> Ok v
  | exception (Dynamic_error _ | Static_error _ | Internal_error _ as e) ->
    Error (to_string e)
