(** SplitMix64 — a deterministic, seedable PRNG. The XMark generator uses
    it instead of [Random] so generated documents are bit-stable across
    OCaml versions and runs. *)

type t

val create : int -> t

val next_int64 : t -> int64

(** Uniform integer in [\[0, bound)]; raises {!Err.Internal_error} when
    [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

val bool : t -> bool

(** Zipf-like skewed choice over [\[0, n)]: rank 0 is the most likely.
    Models XMark's skewed cross-references (popular auctions, people). *)
val zipf : t -> int -> int

(** Uniform choice from a non-empty array. *)
val pick : t -> 'a array -> 'a
