(* Growable arrays. Used pervasively by the store builder, the XML parser
   and the columnar executor, where result sizes are unknown up front. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;  (* fills unused slots; never observed *)
}

let create ?(capacity = 16) dummy =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; len = 0; dummy }

let length t = t.len

let clear t = t.len <- 0

let ensure t n =
  if n > Array.length t.data then begin
    let cap = ref (Array.length t.data) in
    while !cap < n do cap := !cap * 2 done;
    let data = Array.make !cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then Err.internal "Vec.get: index %d out of bounds (length %d)" i t.len;
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then Err.internal "Vec.set: index %d out of bounds (length %d)" i t.len;
  t.data.(i) <- x

let last t =
  if t.len = 0 then Err.internal "Vec.last: empty vector";
  t.data.(t.len - 1)

let pop t =
  if t.len = 0 then Err.internal "Vec.pop: empty vector";
  t.len <- t.len - 1;
  let x = t.data.(t.len) in
  t.data.(t.len) <- t.dummy;
  x

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do f t.data.(i) done

let iteri f t =
  for i = 0 to t.len - 1 do f i t.data.(i) done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do acc := f !acc t.data.(i) done;
  !acc

let of_array dummy a =
  let t = create ~capacity:(max 1 (Array.length a)) dummy in
  Array.iter (push t) a;
  t

let append t other = iter (push t) other
