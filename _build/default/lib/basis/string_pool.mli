(** String interning. The document store keeps tag names and text values
    as integer ids into a pool, which keeps node tables compact and makes
    name-test matching an integer comparison. *)

type t

val create : unit -> t

(** [intern t s] returns the id of [s], allocating a fresh one on first
    sight. Ids are dense, starting at 0. *)
val intern : t -> string -> int

(** The id of [s] if it was ever interned. *)
val find_opt : t -> string -> int option

(** The string behind an id; raises on unknown ids. *)
val get : t -> int -> string

(** Number of distinct strings interned so far. *)
val size : t -> int
