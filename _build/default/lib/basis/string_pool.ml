(* String interning. The document store keeps tag names and text values as
   integer ids into a pool, which makes node tables compact and makes
   name-test comparison an integer comparison (the property staircase join
   and TwigStack-style evaluation rely on). *)

type t = {
  table : (string, int) Hashtbl.t;
  strings : string Vec.t;
}

let create () = { table = Hashtbl.create 64; strings = Vec.create "" }

let intern t s =
  match Hashtbl.find_opt t.table s with
  | Some id -> id
  | None ->
    let id = Vec.length t.strings in
    Vec.push t.strings s;
    Hashtbl.add t.table s id;
    id

let find_opt t s = Hashtbl.find_opt t.table s

let get t id = Vec.get t.strings id

let size t = Vec.length t.strings
