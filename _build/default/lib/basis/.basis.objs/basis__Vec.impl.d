lib/basis/vec.ml: Array Err
