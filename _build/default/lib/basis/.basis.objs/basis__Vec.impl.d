lib/basis/vec.ml: Array
