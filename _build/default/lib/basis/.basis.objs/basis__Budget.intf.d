lib/basis/budget.mli:
