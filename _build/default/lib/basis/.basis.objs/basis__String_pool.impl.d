lib/basis/string_pool.ml: Hashtbl Vec
