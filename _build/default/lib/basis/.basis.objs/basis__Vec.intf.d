lib/basis/vec.mli:
