lib/basis/err.mli: Format
