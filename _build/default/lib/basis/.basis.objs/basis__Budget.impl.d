lib/basis/budget.ml: Err Option Unix
