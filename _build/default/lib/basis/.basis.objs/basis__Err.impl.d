lib/basis/err.ml: Format
