lib/basis/prng.mli:
