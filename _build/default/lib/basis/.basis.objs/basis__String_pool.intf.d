lib/basis/string_pool.mli:
