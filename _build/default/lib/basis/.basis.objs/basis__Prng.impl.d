lib/basis/prng.ml: Array Int64
