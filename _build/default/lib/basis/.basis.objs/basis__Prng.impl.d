lib/basis/prng.ml: Array Err Int64
