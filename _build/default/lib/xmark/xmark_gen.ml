(* A from-scratch XMark auction-site document generator (Schmidt et al.,
   VLDB 2002 — reference [18] of the paper). Deterministic (SplitMix64
   PRNG, fixed seed) and scalable: [scale] plays the role of XMark's "f"
   factor, f = 1.0 producing on the order of 10^5 element nodes here
   (documents of a few tens of MB in serialized form).

   The schema follows auction.dtd closely enough that the 20 benchmark
   queries exercise the same shapes: skewed person->auction references,
   optional elements (reserve, homepage, profile/@income), nested
   description markup (parlist/listitem/text/emph/keyword for Q15/Q16),
   and "gold"-bearing item descriptions (Q14). Entity counts use XMark's
   f = 1 proportions: 25500 persons, 12000 open auctions, 9750 closed
   auctions, 21750 items across six regions, 1000 categories. *)

open Basis

type counts = {
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  items : int;        (* across all six regions *)
  categories : int;
}

let counts_of_scale scale =
  let n base = max 2 (int_of_float (float_of_int base *. scale)) in
  { persons = n 25500;
    open_auctions = n 12000;
    closed_auctions = n 9750;
    items = max 12 (int_of_float (21750.0 *. scale));
    categories = n 1000 }

let words =
  [| "officer"; "embrace"; "such"; "fears"; "distinction"; "markets";
     "gold"; "silver"; "shakespeare"; "understand"; "great"; "preserver";
     "honour"; "summers"; "meadow"; "duteous"; "all"; "shepherd";
     "malice"; "forsworn"; "present"; "beauty"; "tongue"; "mortal";
     "wanton"; "praise"; "springs"; "convertest"; "increase"; "tender";
     "heir"; "bear"; "memory"; "rose"; "riper"; "time"; "decease";
     "creatures"; "desire"; "contracted"; "thine"; "bright"; "eyes";
     "fuel"; "flame"; "self"; "substantial"; "abundance"; "famine";
     "foe"; "sweet"; "cruel"; "ornament"; "herald"; "gaudy"; "spring";
     "within"; "bud"; "buriest"; "content"; "churl"; "waste";
     "niggarding"; "pity"; "world"; "glutton"; "grave"; "wrinkles";
     "field"; "besiege"; "brow"; "forty"; "winters"; "livery"; "youth";
     "proud"; "tattered"; "weed"; "small"; "worth"; "held"; "lusty";
     "days"; "treasure"; "deep"; "sunken"; "shame"; "thriftless" |]

let regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

(* XMark distributes items unevenly across regions; keep europe and
   namerica the largest (Q9 joins against europe items). *)
let region_share = [| 0.10; 0.15; 0.10; 0.30; 0.25; 0.10 |]

let countries = [| "United States"; "Germany"; "Netherlands"; "Japan"; "Australia"; "Kenya" |]
let education = [| "High School"; "College"; "Graduate School"; "Other" |]

type gen = {
  rng : Prng.t;
  buf : Buffer.t;
  c : counts;
}

let w g = Prng.pick g.rng words

let add g fmt = Printf.ksprintf (Buffer.add_string g.buf) fmt

let sentence g n =
  let parts = List.init n (fun _ -> w g) in
  String.concat " " parts

let person_name g =
  Printf.sprintf "%s %s"
    (String.capitalize_ascii (w g))
    (String.capitalize_ascii (w g))

(* -- description markup (exercises Q13/Q14/Q15/Q16) ----------------------- *)

let rec gen_text g =
  add g "<text>";
  let pieces = 1 + Prng.int g.rng 3 in
  for _ = 1 to pieces do
    add g "%s " (sentence g (2 + Prng.int g.rng 6));
    match Prng.int g.rng 4 with
    | 0 -> add g "<bold>%s</bold> " (sentence g 2)
    | 1 -> add g "<keyword>%s</keyword> " (sentence g 2)
    | 2 ->
      (* emph with a nested keyword: the Q15 path needs .../emph/keyword *)
      add g "<emph>%s<keyword>%s</keyword></emph> " (w g) (sentence g 2)
    | _ -> ()
  done;
  add g "</text>"

and gen_parlist g depth =
  add g "<parlist>";
  let n = 1 + Prng.int g.rng 2 in
  for _ = 1 to n do
    add g "<listitem>";
    if depth < 2 && Prng.int g.rng 3 = 0 then gen_parlist g (depth + 1)
    else gen_text g;
    add g "</listitem>"
  done;
  add g "</parlist>"

let gen_description g =
  add g "<description>";
  if Prng.int g.rng 100 < 70 then gen_text g else gen_parlist g 0;
  add g "</description>"

(* -- items ------------------------------------------------------------------ *)

let gen_item g id =
  add g "<item id=\"item%d\">" id;
  add g "<location>%s</location>" (Prng.pick g.rng countries);
  add g "<quantity>%d</quantity>" (1 + Prng.int g.rng 5);
  add g "<name>%s</name>" (sentence g 3);
  add g "<payment>Creditcard</payment>";
  gen_description g;
  add g "<shipping>Will ship internationally</shipping>";
  let ncat = 1 + Prng.int g.rng 3 in
  for _ = 1 to ncat do
    add g "<incategory category=\"category%d\"/>" (Prng.int g.rng g.c.categories)
  done;
  if Prng.int g.rng 100 < 30 then begin
    add g "<mailbox><mail><from>%s</from><to>%s</to><date>%02d/%02d/%d</date>"
      (person_name g) (person_name g)
      (1 + Prng.int g.rng 12) (1 + Prng.int g.rng 28) (1998 + Prng.int g.rng 4);
    gen_text g;
    add g "</mail></mailbox>"
  end;
  add g "</item>"

let gen_regions g =
  add g "<regions>";
  let next_id = ref 0 in
  Array.iteri
    (fun i r ->
       add g "<%s>" r;
       let n =
         max 2 (int_of_float (float_of_int g.c.items *. region_share.(i)))
       in
       for _ = 1 to n do
         gen_item g !next_id;
         incr next_id
       done;
       add g "</%s>" r)
    regions;
  add g "</regions>";
  !next_id

(* -- categories / catgraph --------------------------------------------------- *)

let gen_categories g =
  add g "<categories>";
  for i = 0 to g.c.categories - 1 do
    add g "<category id=\"category%d\"><name>%s</name>" i (sentence g 2);
    gen_description g;
    add g "</category>"
  done;
  add g "</categories>";
  add g "<catgraph>";
  for _ = 1 to g.c.categories do
    add g "<edge from=\"category%d\" to=\"category%d\"/>"
      (Prng.int g.rng g.c.categories) (Prng.int g.rng g.c.categories)
  done;
  add g "</catgraph>"

(* -- people ------------------------------------------------------------------ *)

let gen_person g id =
  add g "<person id=\"person%d\">" id;
  add g "<name>%s</name>" (person_name g);
  add g "<emailaddress>mailto:%s%d@example.com</emailaddress>" (w g) id;
  if Prng.int g.rng 100 < 40 then
    add g "<phone>+%d (%d) %d</phone>"
      (1 + Prng.int g.rng 99) (100 + Prng.int g.rng 899) (1000000 + Prng.int g.rng 8999999);
  if Prng.int g.rng 100 < 50 then begin
    add g "<address><street>%d %s St</street><city>%s</city><country>%s</country><zipcode>%d</zipcode></address>"
      (1 + Prng.int g.rng 99) (String.capitalize_ascii (w g))
      (String.capitalize_ascii (w g)) (Prng.pick g.rng countries)
      (10000 + Prng.int g.rng 89999)
  end;
  if Prng.int g.rng 100 < 50 then
    add g "<homepage>http://www.example.com/~person%d</homepage>" id;
  if Prng.int g.rng 100 < 60 then
    add g "<creditcard>%04d %04d %04d %04d</creditcard>"
      (Prng.int g.rng 10000) (Prng.int g.rng 10000)
      (Prng.int g.rng 10000) (Prng.int g.rng 10000);
  (* profile (with @income) on ~75% of persons: Q11/Q12/Q20 probe it *)
  if Prng.int g.rng 100 < 75 then begin
    let income = 9987.5 +. (Prng.float g.rng *. 125000.0) in
    add g "<profile income=\"%.2f\">" income;
    let ni = Prng.int g.rng 4 in
    for _ = 1 to ni do
      add g "<interest category=\"category%d\"/>"
        (Prng.zipf g.rng g.c.categories)
    done;
    if Prng.int g.rng 100 < 60 then
      add g "<education>%s</education>" (Prng.pick g.rng education);
    if Prng.int g.rng 100 < 80 then
      add g "<gender>%s</gender>" (if Prng.bool g.rng then "male" else "female");
    add g "<business>%s</business>" (if Prng.bool g.rng then "Yes" else "No");
    if Prng.int g.rng 100 < 70 then
      add g "<age>%d</age>" (18 + Prng.int g.rng 60);
    add g "</profile>"
  end;
  if Prng.int g.rng 100 < 40 then begin
    add g "<watches>";
    let nw = 1 + Prng.int g.rng 3 in
    for _ = 1 to nw do
      add g "<watch open_auction=\"open_auction%d\"/>"
        (Prng.zipf g.rng g.c.open_auctions)
    done;
    add g "</watches>"
  end;
  add g "</person>"

let gen_people g =
  add g "<people>";
  for i = 0 to g.c.persons - 1 do gen_person g i done;
  add g "</people>"

(* -- auctions ------------------------------------------------------------------ *)

let money g hi = Printf.sprintf "%.2f" (0.5 +. (Prng.float g.rng *. hi))

let gen_open_auction g id n_items =
  add g "<open_auction id=\"open_auction%d\">" id;
  (* initial ~ U(0.5, 500): income > 5000 * initial then has the few-percent
     selectivity the paper reports for the Q11 join *)
  let initial = 0.5 +. (Prng.float g.rng *. 500.0) in
  add g "<initial>%.2f</initial>" initial;
  if Prng.int g.rng 100 < 45 then
    add g "<reserve>%s</reserve>" (money g 1000.0);
  let nbid = Prng.int g.rng 5 in
  let cur = ref initial in
  for _ = 1 to nbid do
    let inc = 1.5 +. (Prng.float g.rng *. 20.0) in
    cur := !cur +. inc;
    add g "<bidder><date>%02d/%02d/2001</date><time>%02d:%02d:%02d</time><personref person=\"person%d\"/><increase>%.2f</increase></bidder>"
      (1 + Prng.int g.rng 12) (1 + Prng.int g.rng 28)
      (Prng.int g.rng 24) (Prng.int g.rng 60) (Prng.int g.rng 60)
      (Prng.zipf g.rng g.c.persons) inc
  done;
  add g "<current>%.2f</current>" !cur;
  if Prng.int g.rng 100 < 20 then add g "<privacy>Yes</privacy>";
  add g "<itemref item=\"item%d\"/>" (Prng.int g.rng n_items);
  add g "<seller person=\"person%d\"/>" (Prng.zipf g.rng g.c.persons);
  add g "<annotation><author person=\"person%d\"/>" (Prng.zipf g.rng g.c.persons);
  gen_description g;
  add g "<happiness>%d</happiness></annotation>" (1 + Prng.int g.rng 10);
  add g "<quantity>%d</quantity>" (1 + Prng.int g.rng 5);
  add g "<type>%s</type>" (if Prng.bool g.rng then "Regular" else "Featured");
  add g "<interval><start>01/01/2001</start><end>12/31/2001</end></interval>";
  add g "</open_auction>"

let gen_closed_auction g n_items =
  add g "<closed_auction>";
  add g "<seller person=\"person%d\"/>" (Prng.zipf g.rng g.c.persons);
  add g "<buyer person=\"person%d\"/>" (Prng.zipf g.rng g.c.persons);
  add g "<itemref item=\"item%d\"/>" (Prng.int g.rng n_items);
  add g "<price>%s</price>" (money g 200.0);
  add g "<date>%02d/%02d/2001</date>" (1 + Prng.int g.rng 12) (1 + Prng.int g.rng 28);
  add g "<quantity>%d</quantity>" (1 + Prng.int g.rng 5);
  add g "<type>%s</type>" (if Prng.bool g.rng then "Regular" else "Featured");
  add g "<annotation><author person=\"person%d\"/>" (Prng.zipf g.rng g.c.persons);
  gen_description g;
  add g "<happiness>%d</happiness></annotation>" (1 + Prng.int g.rng 10);
  add g "</closed_auction>"

(* ------------------------------------------------------------- entry points *)

(* Generate a serialized auction document at the given scale factor. *)
let generate ?(seed = 42) ~scale () =
  let c = counts_of_scale scale in
  let g = { rng = Prng.create seed; buf = Buffer.create (1 lsl 20); c } in
  add g "<site>";
  let n_items = gen_regions g in
  gen_categories g;
  gen_people g;
  add g "<open_auctions>";
  for i = 0 to c.open_auctions - 1 do gen_open_auction g i n_items done;
  add g "</open_auctions>";
  add g "<closed_auctions>";
  for _ = 1 to c.closed_auctions do gen_closed_auction g n_items done;
  add g "</closed_auctions>";
  add g "</site>";
  Buffer.contents g.buf

(* Generate, parse, and register as "auction.xml" in [store]. Returns
   (document node, serialized size in bytes). *)
let load ?seed ?(uri = "auction.xml") ~scale store =
  let src = generate ?seed ~scale () in
  let root = Xmldb.Xml_parser.load_document store ~uri src in
  (root, String.length src)
