(** A from-scratch XMark auction-site document generator (Schmidt et al.,
    VLDB 2002 — the paper's reference [18]). Deterministic (SplitMix64,
    fixed seed) and scalable: [scale] plays the role of XMark's "f"
    factor, using the f = 1 proportions (25500 persons, 12000 open
    auctions, 9750 closed auctions, 21750 items over six regions, 1000
    categories).

    The schema follows auction.dtd closely enough for all 20 benchmark
    queries: skewed person→auction references, optional elements
    (reserve, homepage, profile/@income), nested description markup
    (parlist/listitem/text/emph/keyword for Q15/Q16), "gold"-bearing
    descriptions (Q14). *)

type counts = {
  persons : int;
  open_auctions : int;
  closed_auctions : int;
  items : int;
  categories : int;
}

val counts_of_scale : float -> counts

(** Generate a serialized auction document at the given scale. *)
val generate : ?seed:int -> scale:float -> unit -> string

(** Generate, parse, and register under [uri] (default "auction.xml").
    Returns the document node and the serialized size in bytes. *)
val load :
  ?seed:int -> ?uri:string -> scale:float -> Xmldb.Doc_store.t ->
  Xmldb.Node_id.t * int
