lib/xmark/xmark_queries.mli:
