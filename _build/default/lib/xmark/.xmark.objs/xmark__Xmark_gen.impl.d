lib/xmark/xmark_gen.ml: Array Basis Buffer List Printf Prng String Xmldb
