lib/xmark/xmark_gen.mli: Xmldb
