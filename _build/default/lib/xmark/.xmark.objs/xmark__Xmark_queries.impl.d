lib/xmark/xmark_queries.ml: List
