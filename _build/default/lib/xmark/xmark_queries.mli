(** The 20 queries of the XMark benchmark, adapted only where the original
    text needs ids that tiny instances lack (Q1/Q4 use low person
    numbers). Q11 is the query the paper profiles in Table 2; Q6 is the
    plan of Figures 6 and 9. *)

val q1 : string
val q2 : string
val q3 : string
val q4 : string
val q5 : string
val q6 : string
val q7 : string
val q8 : string
val q9 : string
val q10 : string
val q11 : string
val q12 : string
val q13 : string
val q14 : string
val q15 : string
val q16 : string
val q17 : string
val q18 : string
val q19 : string
val q20 : string

(** All twenty, in order, as (name, text). *)
val all : (string * string) list

(** Look up by name ("Q1" .. "Q20"); raises [Not_found] otherwise. *)
val get : string -> string
