(** Node identity: (fragment id, preorder rank).

    Fragments are created in globally increasing order, so lexicographic
    comparison of (frag, pre) is a stable document order across documents
    and runtime-constructed fragments — the order-preserving identifier
    scheme ("preorder ranks") the paper assumes in Section 3 / Figure 5. *)

type t

val make : frag:int -> pre:int -> t

val frag : t -> int
val pre : t -> int

val equal : t -> t -> bool

(** Document order. *)
val compare : t -> t -> int

val hash : t -> int

(** ["frag.pre"], for diagnostics. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
