(* Node identity: (fragment, preorder rank). Fragments are created in a
   globally increasing order, so lexicographic comparison of (frag, pre)
   is a document order that is stable across documents and constructed
   fragments — the "implementation-defined order across documents" the
   XDM asks for, and exactly the order-preserving identifier scheme
   (preorder ranks) the paper assumes in Section 3 / Figure 5. *)

type t = { frag : int; pre : int }

let make ~frag ~pre = { frag; pre }

let frag t = t.frag
let pre t = t.pre

let equal a b = a.frag = b.frag && a.pre = b.pre

(* Document order. *)
let compare a b =
  match Int.compare a.frag b.frag with
  | 0 -> Int.compare a.pre b.pre
  | c -> c

let hash t = (t.frag * 0x1000003) lxor t.pre

let to_string t = Printf.sprintf "%d.%d" t.frag t.pre

let pp fmt t = Format.pp_print_string fmt (to_string t)
