(* Qualified names. We keep the lexical (prefix, local) pair and do not
   resolve namespace URIs: none of the paper's workloads (XMark, the
   running examples) declare namespaces, and Pathfinder's encoding is
   equally name-string based. Two QNames are equal iff prefix and local
   part are equal. *)

type t = { prefix : string; local : string }

let make ?(prefix = "") local = { prefix; local }

let local t = t.local
let prefix t = t.prefix

let equal a b = String.equal a.local b.local && String.equal a.prefix b.prefix

let compare a b =
  match String.compare a.local b.local with
  | 0 -> String.compare a.prefix b.prefix
  | c -> c

let hash t = Hashtbl.hash (t.prefix, t.local)

let to_string t =
  if t.prefix = "" then t.local else t.prefix ^ ":" ^ t.local

(* Parse a lexical QName, e.g. "xml:lang" or "person". *)
let of_string s =
  match String.index_opt s ':' with
  | None -> { prefix = ""; local = s }
  | Some i ->
    { prefix = String.sub s 0 i;
      local = String.sub s (i + 1) (String.length s - i - 1) }

let pp fmt t = Format.pp_print_string fmt (to_string t)
