(** Tag-name indexed step evaluation — the "element streams" alternative
    realization of the step operator ⊘ that the paper attributes to
    TwigStack (reference [5]; Section 3 notes that several step evaluation
    techniques can be plugged in).

    For every (fragment, tag) pair touched, the index materializes the
    sorted stream of preorder ranks carrying that name. Descendant steps
    binary-search the stream per context subtree instead of scanning the
    pre range; child/attribute steps filter the stream by parent. *)

type t

(** An (initially empty) index over the store; streams materialize lazily
    per (fragment, name). The index stays valid as fragments are appended
    (new fragments get their own streams on first use). *)
val create : Doc_store.t -> t

(** Can this (axis, test) profile be answered from the index?
    (child/descendant/descendant-or-self/attribute with a name test.) *)
val applicable : Axis.t -> Node_test.t -> bool

(** Same contract as {!Staircase.step} — duplicate-free results in
    document order. Only call when {!applicable} holds. *)
val step : t -> Axis.t -> Node_test.t -> Node_id.t array -> Node_id.t array
