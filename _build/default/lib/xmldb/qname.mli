(** Qualified names as lexical (prefix, local) pairs.

    Namespace URIs are not resolved: none of the paper's workloads declare
    namespaces, and Pathfinder's encoding is equally name-string based.
    Two QNames are equal iff both prefix and local part are equal. *)

type t

(** [make ?prefix local] builds a QName; [prefix] defaults to [""]. *)
val make : ?prefix:string -> string -> t

val local : t -> string
val prefix : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** ["prefix:local"], or just ["local"] with an empty prefix. *)
val to_string : t -> string

(** Parse a lexical QName, e.g. ["xml:lang"] or ["person"]. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit
