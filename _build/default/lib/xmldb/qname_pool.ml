(* Interning of qualified names, mirroring String_pool for QNames. *)

type t = {
  table : (Qname.t, int) Hashtbl.t;
  qnames : Qname.t Basis.Vec.t;
}

let create () =
  { table = Hashtbl.create 64;
    qnames = Basis.Vec.create (Qname.make "") }

let intern t q =
  match Hashtbl.find_opt t.table q with
  | Some id -> id
  | None ->
    let id = Basis.Vec.length t.qnames in
    Basis.Vec.push t.qnames q;
    Hashtbl.add t.table q id;
    id

let find_opt t q = Hashtbl.find_opt t.table q

let get t id = Basis.Vec.get t.qnames id

let size t = Basis.Vec.length t.qnames
