(* The twelve XPath axes (we omit the deprecated namespace axis). *)

type t =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Attribute
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Following_sibling
  | Preceding
  | Preceding_sibling

let to_string = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Attribute -> "attribute"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following -> "following"
  | Following_sibling -> "following-sibling"
  | Preceding -> "preceding"
  | Preceding_sibling -> "preceding-sibling"

let of_string = function
  | "child" -> Some Child
  | "descendant" -> Some Descendant
  | "descendant-or-self" -> Some Descendant_or_self
  | "self" -> Some Self
  | "attribute" -> Some Attribute
  | "parent" -> Some Parent
  | "ancestor" -> Some Ancestor
  | "ancestor-or-self" -> Some Ancestor_or_self
  | "following" -> Some Following
  | "following-sibling" -> Some Following_sibling
  | "preceding" -> Some Preceding
  | "preceding-sibling" -> Some Preceding_sibling
  | _ -> None

(* Reverse axes deliver nodes in reverse document order for the purpose of
   positional predicates. We expose the flag; the compiler and interpreter
   use it when numbering predicate positions. *)
let is_reverse = function
  | Parent | Ancestor | Ancestor_or_self | Preceding | Preceding_sibling -> true
  | Child | Descendant | Descendant_or_self | Self | Attribute
  | Following | Following_sibling -> false

let pp fmt t = Format.pp_print_string fmt (to_string t)
