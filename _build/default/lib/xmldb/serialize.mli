(** XML serialization of stored nodes. Used to print query results and to
    compare nodes structurally in tests (equal serializations = deep
    equal). Attribute and text values are escaped; empty elements use the
    self-closing form; document nodes serialize their children. *)

val node_to_buf : Doc_store.t -> Buffer.t -> Node_id.t -> unit

val node_to_string : Doc_store.t -> Node_id.t -> string
