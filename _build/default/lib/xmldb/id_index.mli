(** ID lookup (fn:id). Without DTD/schema processing, every attribute with
    local name "id" is treated as ID-typed (XMark's convention). The index
    builds lazily per fragment and maps each id token to the element
    owning the attribute (first in document order on duplicates). *)

type t

val create : Doc_store.t -> t

(** Whitespace-split an idrefs value. *)
val tokens : string -> string list

(** [lookup t ~ctx values] resolves every id token of every value within
    the fragment (document) of [ctx]; duplicate-free, document order. *)
val lookup : t -> ctx:Node_id.t -> string list -> Node_id.t array
