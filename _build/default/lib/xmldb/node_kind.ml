(* The six XDM node kinds. Attributes are stored inline in the pre/size/
   level table (immediately after their owner element, before its children,
   with size 0); the axis evaluator filters them out of every axis except
   [attribute] and [self]/[ancestor]-style membership tests. *)

type t =
  | Document
  | Element
  | Attribute
  | Text
  | Comment
  | Processing_instruction

let equal (a : t) (b : t) = a = b

let to_string = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"
  | Processing_instruction -> "processing-instruction"

let pp fmt t = Format.pp_print_string fmt (to_string t)
