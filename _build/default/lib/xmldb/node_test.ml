(* XPath node tests: kind tests and name tests. A name test's QName is
   kept as a string id into the store's name pool, so that matching a
   node against a name test is an integer comparison. [Name_wild] is the
   "*" test; [Name] with an unresolvable name (a tag that never occurs in
   the store) is represented by id [-2], which matches nothing. *)

type t =
  | Any_node                     (* node() *)
  | Kind of Node_kind.t          (* element(), text(), comment(), ... *)
  | Name of int                  (* element/attribute with this name id *)
  | Name_wild                    (* * *)
  | Pi_target of string          (* processing-instruction("target") *)

let to_string ~name_of = function
  | Any_node -> "node()"
  | Kind k -> Node_kind.to_string k ^ "()"
  | Name id -> (if id = -2 then "<unknown>" else name_of id)
  | Name_wild -> "*"
  | Pi_target t -> Printf.sprintf "processing-instruction(%S)" t
