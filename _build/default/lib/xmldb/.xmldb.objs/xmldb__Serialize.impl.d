lib/xmldb/serialize.ml: Array Buffer Doc_store Node_id Node_kind Qname String
