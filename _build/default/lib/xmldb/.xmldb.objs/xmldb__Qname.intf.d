lib/xmldb/qname.mli: Format
