lib/xmldb/node_id.ml: Format Int Printf
