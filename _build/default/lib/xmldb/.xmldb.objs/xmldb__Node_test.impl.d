lib/xmldb/node_test.ml: Node_kind Printf
