lib/xmldb/xml_parser.ml: Array Basis Buffer Char Doc_store Err Format Qname String Uchar
