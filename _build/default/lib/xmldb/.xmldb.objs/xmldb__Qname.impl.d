lib/xmldb/qname.ml: Format Hashtbl String
