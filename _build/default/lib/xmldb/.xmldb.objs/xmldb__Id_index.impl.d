lib/xmldb/id_index.ml: Array Basis Buffer Doc_store Hashtbl List Node_id Node_kind Qname Staircase String Vec
