lib/xmldb/staircase.ml: Array Axis Basis Doc_store Err List Node_id Node_kind Node_test Qname Vec
