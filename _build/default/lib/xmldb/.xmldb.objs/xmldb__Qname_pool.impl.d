lib/xmldb/qname_pool.ml: Basis Hashtbl Qname
