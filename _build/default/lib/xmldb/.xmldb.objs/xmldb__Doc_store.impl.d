lib/xmldb/doc_store.ml: Array Basis Buffer Err List Node_id Node_kind Qname Qname_pool String_pool Vec
