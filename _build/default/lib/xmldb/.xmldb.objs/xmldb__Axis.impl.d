lib/xmldb/axis.ml: Format
