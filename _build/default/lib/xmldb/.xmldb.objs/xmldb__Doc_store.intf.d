lib/xmldb/doc_store.mli: Node_id Node_kind Qname
