lib/xmldb/tag_index.ml: Array Axis Basis Doc_store Err Hashtbl List Node_id Node_kind Node_test Staircase Vec
