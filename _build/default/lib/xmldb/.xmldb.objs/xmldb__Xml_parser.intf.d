lib/xmldb/xml_parser.mli: Doc_store Node_id
