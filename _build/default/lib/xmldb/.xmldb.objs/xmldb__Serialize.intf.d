lib/xmldb/serialize.mli: Buffer Doc_store Node_id
