lib/xmldb/node_kind.ml: Format
