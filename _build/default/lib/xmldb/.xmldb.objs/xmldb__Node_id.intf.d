lib/xmldb/node_id.mli: Format
