lib/xmldb/staircase.mli: Axis Basis Doc_store Node_id Node_kind Node_test
