lib/xmldb/id_index.mli: Doc_store Node_id
