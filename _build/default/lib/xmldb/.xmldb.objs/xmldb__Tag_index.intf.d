lib/xmldb/tag_index.mli: Axis Doc_store Node_id Node_test
