(* Quickstart: load a document, run XQuery, look at a plan.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A store holds any number of documents (and nodes constructed at
        query runtime). *)
  let store = Xmldb.Doc_store.create () in
  let _root =
    Xmldb.Xml_parser.load_document store ~uri:"books.xml"
      {|<catalog>
          <book year="2003"><title>Purely Functional Data Structures</title><price>39.95</price></book>
          <book year="1994"><title>ML for the Working Programmer</title><price>54.00</price></book>
          <book year="2013"><title>Real World OCaml</title><price>0.00</price></book>
        </catalog>|}
  in

  (* 2. Run queries: Engine.run parses, normalizes, compiles to relational
        algebra, optimizes and executes. *)
  let show q =
    Printf.printf "Q: %s\n=> %s\n\n" q (Engine.run_to_string store q)
  in
  show {|doc("books.xml")/catalog/book/title/text()|};
  show {|for $b in doc("books.xml")/catalog/book
         where $b/price > 10
         order by $b/price descending
         return <cheap>{ $b/title/text() }</cheap>|};
  show {|count(doc("books.xml")//book[@year >= 2000])|};
  show {|avg(doc("books.xml")//price)|};

  (* 3. Inspect the compiled plan and what the optimizer did to it. *)
  let q = {|unordered { doc("books.xml")//(title|price) }|} in
  let _, raw, optimized = Engine.plans_of q in
  Printf.printf "plan for %s\n  raw:       %s\n  optimized: %s\n%s" q
    (Algebra.Plan_pp.summary raw)
    (Algebra.Plan_pp.summary optimized)
    (Algebra.Plan_pp.to_tree optimized)
