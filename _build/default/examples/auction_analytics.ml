(* A realistic workload on generated auction-site data: the analytics
   queries an operator of the XMark site would actually run, executed
   under ordering mode unordered (none of them observes order), with the
   speedup against the order-faithful baseline printed per query.

     dune exec examples/auction_analytics.exe [scale] *)

let () =
  let scale =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.01
  in
  let store = Xmldb.Doc_store.create () in
  let _, bytes = Xmark.Xmark_gen.load ~scale store in
  Printf.printf "auction.xml: %.2f MB, %d nodes\n\n"
    (float_of_int bytes /. 1e6)
    (Xmldb.Doc_store.total_nodes store);

  let unordered =
    { Engine.default_opts with Engine.mode = Some Xquery.Ast.Unordered }
  in
  let analytics =
    [ ( "auctions per region",
        {|let $a := doc("auction.xml")
          for $r in $a/site/regions/*
          return <region name="{ name($r) }">{ count($r/item) }</region>|} );
      ( "high-income bidders without homepage",
        {|let $a := doc("auction.xml")
          return count($a/site/people/person[profile/@income > 80000][empty(homepage)])|} );
      ( "most expensive closed auction",
        {|max(doc("auction.xml")/site/closed_auctions/closed_auction/price)|} );
      ( "average bid increase",
        {|avg(doc("auction.xml")/site/open_auctions/open_auction/bidder/increase)|} );
      ( "items mentioning gold per region",
        {|let $a := doc("auction.xml")
          for $r in $a/site/regions/*
          let $hits := for $i in $r/item
                       where contains(string(exactly-one($i/description)), "gold")
                       return $i
          return <gold region="{ name($r) }">{ count($hits) }</gold>|} );
      ( "education histogram",
        {|let $a := doc("auction.xml")
          for $e in distinct-values($a/site/people/person/profile/education)
          let $n := count($a/site/people/person[profile/education = $e])
          order by $n descending
          return <education level="{ $e }">{ $n }</education>|} );
      ( "sellers who are also bidders",
        {|let $a := doc("auction.xml")
          let $sellers := $a/site/open_auctions/open_auction/seller/@person
          let $bidders := $a/site/open_auctions/open_auction/bidder/personref/@person
          return count(distinct-values(
            for $s in $sellers where $bidders = $s return $s))|} );
    ]
  in
  List.iter
    (fun (name, q) ->
       let t0 = Unix.gettimeofday () in
       let baseline = Engine.run ~opts:Engine.ordered_baseline store q in
       let t1 = Unix.gettimeofday () in
       let fast = Engine.run ~opts:unordered store q in
       let t2 = Unix.gettimeofday () in
       ignore baseline;
       Printf.printf "%-40s %8.1f ms -> %8.1f ms\n  %s\n\n" name
         ((t1 -. t0) *. 1000.0) ((t2 -. t1) *. 1000.0)
         (if String.length fast.Engine.serialized > 200 then
            String.sub fast.Engine.serialized 0 200 ^ "..."
          else fast.Engine.serialized))
    analytics
