(* The bibliography workload of the W3C "XML Query Use Cases" (use case
   XMP) — the queries every XQuery paper's intro gestures at. Each query
   runs on both engines (compiled plans and the reference interpreter) and
   the example asserts they agree before printing.

     dune exec examples/bibliography.exe *)

let bib =
  {|<bib>
      <book year="1994">
        <title>TCP/IP Illustrated</title>
        <author><last>Stevens</last><first>W.</first></author>
        <publisher>Addison-Wesley</publisher>
        <price>65.95</price>
      </book>
      <book year="1992">
        <title>Advanced Programming in the Unix environment</title>
        <author><last>Stevens</last><first>W.</first></author>
        <publisher>Addison-Wesley</publisher>
        <price>65.95</price>
      </book>
      <book year="2000">
        <title>Data on the Web</title>
        <author><last>Abiteboul</last><first>Serge</first></author>
        <author><last>Buneman</last><first>Peter</first></author>
        <author><last>Suciu</last><first>Dan</first></author>
        <publisher>Morgan Kaufmann Publishers</publisher>
        <price>39.95</price>
      </book>
      <book year="1999">
        <title>The Economics of Technology and Content for Digital TV</title>
        <editor><last>Gerbarg</last><first>Darcy</first><affiliation>CITI</affiliation></editor>
        <publisher>Kluwer Academic Publishers</publisher>
        <price>129.95</price>
      </book>
    </bib>|}

let queries =
  [ ( "XMP-Q1: books published by Addison-Wesley after 1991",
      {|<bib>{
          for $b in doc("bib.xml")/bib/book
          where $b/publisher = "Addison-Wesley" and $b/@year > 1991
          return <book year="{ $b/@year }">{ $b/title }</book>
        }</bib>|} );
    ( "XMP-Q3: title-author pairs",
      {|<results>{
          for $b in doc("bib.xml")/bib/book
          return <result>{ $b/title }{ $b/author }</result>
        }</results>|} );
    ( "XMP-Q4: books per author",
      {|<results>{
          for $last in distinct-values(doc("bib.xml")//author/last)
          order by $last
          return
            <result>
              <author>{ $last }</author>
              { for $b in doc("bib.xml")/bib/book
                where $b/author/last = $last
                return $b/title }
            </result>
        }</results>|} );
    ( "XMP-Q5: titles with prices (join shape)",
      {|<books-with-prices>{
          for $b in doc("bib.xml")//book
          return <book-with-price>{ $b/title }<price>{ $b/price/text() }</price></book-with-price>
        }</books-with-prices>|} );
    ( "XMP-Q6: books with more than one author",
      {|<bib>{
          for $b in doc("bib.xml")//book
          where count($b/author) > 1
          return <book>{ $b/title }{ $b/author }</book>
        }</bib>|} );
    ( "XMP-Q7: by publisher, sorted by title",
      {|<bib>{
          for $b in doc("bib.xml")//book[publisher = "Addison-Wesley"]
          order by string(exactly-one($b/title))
          return <book>{ $b/@year }{ $b/title }</book>
        }</bib>|} );
    ( "XMP-Q10: prices summarized",
      {|<prices>
          <minimum>{ min(doc("bib.xml")//price) }</minimum>
          <maximum>{ max(doc("bib.xml")//price) }</maximum>
          <average>{ round(100 * avg(doc("bib.xml")//price)) div 100 }</average>
        </prices>|} );
    ( "XMP-Q11: books by first author last name",
      {|<bib>{
          for $b in doc("bib.xml")//book
          where $b/author[1]/last = "Stevens"
          return $b/title
        }</bib>|} );
    ( "XMP-Q12: editors become authorship notes",
      {|<bib>{
          for $b in doc("bib.xml")//book[editor]
          return <reference>{ $b/title }<org>{ $b/editor/affiliation/text() }</org></reference>
        }</bib>|} );
  ]

let () =
  let st = Xmldb.Doc_store.create () in
  let _ = Xmldb.Xml_parser.load_document ~strip_ws:true st ~uri:"bib.xml" bib in
  let failures = ref 0 in
  List.iter
    (fun (name, q) ->
       let compiled = Engine.run st q in
       let interpreted = Interp.Xdm.serialize st (Interp.Interpreter.run st q) in
       if compiled.Engine.serialized <> interpreted then begin
         incr failures;
         Printf.printf "!! %s: compiled and interpreted disagree\n  %s\n  %s\n"
           name compiled.Engine.serialized interpreted
       end
       else Printf.printf "== %s ==\n%s\n\n" name compiled.Engine.serialized)
    queries;
  if !failures > 0 then exit 1
