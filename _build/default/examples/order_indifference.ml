(* A guided tour of the paper's running examples (Sections 1 and 2):
   where order matters in XQuery, where it does not, and what the
   compiler does about it.

     dune exec examples/order_indifference.exe *)

let heading s = Printf.printf "\n--- %s ---\n" s

let () =
  let store = Xmldb.Doc_store.create () in
  (* the XML fragment of Figure 1, bound to doc("t.xml") *)
  let _ =
    Xmldb.Xml_parser.load_document store ~uri:"t.xml"
      "<a><b><c/><d/></b><c/></a>"
  in
  let run ?opts q = Engine.run_to_string ?opts store q in

  heading "Expression (1): $t//(c|d) under ordering mode ordered";
  (* document order prescribes (c1, d, c2) *)
  Printf.printf "%s\n" (run {|let $t := doc("t.xml") return $t//(c|d)|});

  heading "The same in the scope of unordered { }";
  (* the engine is free to return any permutation; ours concatenates the
     child::c and child::d results — expression (2) of the paper: the node
     set union '|' traded for low-cost concatenation ',' *)
  Printf.printf "%s\n"
    (run {|let $t := doc("t.xml") return unordered { $t//(c|d) }|});

  heading "Interaction 2: sequence order establishes document order";
  (* expression (3): inside the new fragment, d precedes b *)
  Printf.printf "%s\n"
    (run
       {|let $t := doc("t.xml")
         let $b := $t//b let $d := $t//d
         let $e := <e>{ $d, $b }</e>
         return (exactly-one($b) << exactly-one($d),
                 exactly-one($e/b) << exactly-one($e/d))|});

  heading "Interaction 3: positional variables survive unordered mode";
  (* expression (4): even under ordering mode unordered, $p reflects the
     position in the binding sequence *)
  Printf.printf "%s\n"
    (run
       {|declare ordering unordered;
         for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>|});

  heading "Interaction 4: iteration-internal order is preserved";
  (* expression (5): (2,20,1,10) would be admissible under unordered mode,
     (1,20,2,10) would not *)
  Printf.printf "%s\n"
    (run {|declare ordering unordered;
           for $x in (1,2) return ($x, $x * 10)|});

  heading "The let-unfolding trap (Section 2.2)";
  (* unordered { $c2 } where $c2 := ($t//c)[2] must NOT be rewritten into
     unordered { ($t//c)[2] }: the binding is evaluated under ordered mode,
     so the result is deterministically the second c in document order.
     (Note ($t//c)[2], not $t//c[2]: the latter selects c elements that are
     the second c child of their own parent — none here.) *)
  Printf.printf "%s\n"
    (run
       {|let $c2 := (doc("t.xml")//c)[2] return unordered { $c2 }|});

  heading "What the compiler sees (Figure 7 at work)";
  let show_plans q =
    let ordered =
      { Engine.default_opts with Engine.mode = Some Xquery.Ast.Ordered }
    in
    let unordered =
      { Engine.default_opts with Engine.mode = Some Xquery.Ast.Unordered }
    in
    let _, raw_o, opt_o = Engine.plans_of ~opts:ordered q in
    let _, raw_u, opt_u = Engine.plans_of ~opts:unordered q in
    Printf.printf "query: %s\n" q;
    Printf.printf "  ordered   raw %-38s cda %s\n"
      (Algebra.Plan_pp.summary raw_o) (Algebra.Plan_pp.summary opt_o);
    Printf.printf "  unordered raw %-38s cda %s\n"
      (Algebra.Plan_pp.summary raw_u) (Algebra.Plan_pp.summary opt_u)
  in
  show_plans {|doc("t.xml")//c|};
  show_plans {|for $b in doc("t.xml")/a/b return count($b/descendant::c)|};
  show_plans {|doc("t.xml")//(c|d)|};
  Printf.printf
    "\nEvery 'rownum %%' is a sort the runtime must perform; every '#' is a\n\
     free column. Ordering mode unordered plus column dependency analysis\n\
     removes them all — that is the paper in one table.\n"
