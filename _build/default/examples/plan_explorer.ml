(* Plan explorer: how each optimization stage transforms the algebra for
   the 20 XMark queries — the ablation view of the compiler.

     dune exec examples/plan_explorer.exe [Qn]   (default: summary of all) *)

module A = Algebra.Plan

let stages =
  [ ("ordered, no opt   ", Engine.ordered_baseline);
    ("ordered + CDA     ",
     { Engine.default_opts with Engine.mode = Some Xquery.Ast.Ordered });
    ("unordered, rules  ",
     { Engine.default_opts with
       Engine.mode = Some Xquery.Ast.Unordered; Engine.cda = false });
    ("unordered + CDA   ",
     { Engine.default_opts with Engine.mode = Some Xquery.Ast.Unordered }) ]

let summarize q =
  List.map
    (fun (name, opts) ->
       let _, raw, opt = Engine.plans_of ~opts q in
       let p = if opts.Engine.cda then opt else raw in
       (name, A.count_ops p, A.count_kind p "%", A.count_kind p "#"))
    stages

let () =
  match if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None with
  | Some qn ->
    let q = Xmark.Xmark_queries.get qn in
    Printf.printf "%s\n\n" q;
    List.iter
      (fun (name, opts) ->
         let _, raw, opt = Engine.plans_of ~opts q in
         let p = if opts.Engine.cda then opt else raw in
         Printf.printf "=== %s: %s ===\n%s\n" name (Algebra.Plan_pp.summary p)
           (Algebra.Plan_pp.to_tree p))
      stages
  | None ->
    Printf.printf "%-5s | %s\n" "query"
      (String.concat " | "
         (List.map (fun (n, _) -> Printf.sprintf "%-22s" n) stages));
    List.iter
      (fun (qn, q) ->
         let cells =
           List.map
             (fun (_, ops, rn, ri) ->
                Printf.sprintf "%4d ops %2d%% %2d#" ops rn ri)
             (summarize q)
         in
         Printf.printf "%-5s | %s\n" qn
           (String.concat " | "
              (List.map (Printf.sprintf "%-22s") cells)))
      Xmark.Xmark_queries.all;
    Printf.printf
      "\n('%%' = order-establishing rownum operators: each one is a sort;\n\
       '#' = free rowid numberings the Figure-7 rules put in their place)\n"
