examples/quickstart.mli:
