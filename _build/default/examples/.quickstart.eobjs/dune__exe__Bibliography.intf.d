examples/bibliography.mli:
