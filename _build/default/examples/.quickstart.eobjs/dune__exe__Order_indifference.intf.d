examples/order_indifference.mli:
