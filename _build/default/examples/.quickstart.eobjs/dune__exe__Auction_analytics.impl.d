examples/auction_analytics.ml: Array Engine List Printf String Sys Unix Xmark Xmldb Xquery
