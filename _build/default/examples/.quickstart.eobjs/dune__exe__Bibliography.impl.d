examples/bibliography.ml: Engine Interp List Printf Xmldb
