examples/order_indifference.ml: Algebra Engine Printf Xmldb Xquery
