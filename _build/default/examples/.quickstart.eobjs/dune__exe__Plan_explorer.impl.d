examples/plan_explorer.ml: Algebra Array Engine List Printf String Sys Xmark Xquery
