examples/quickstart.ml: Algebra Engine Printf Xmldb
