(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5) plus the plan-level figures.

     fig6       Figure 6:  Q6 plans under ordered vs unordered (raw)
     fig9       Figure 9:  Q6 plan after column dependency analysis
     fig10      Figure 10: unordered { $t//(c|d) } — union becomes concat
     table2     Table 2:   Q11 execution profile breakdown
     plansizes  in-text:   operator counts before/after CDA (Q11: 235->141)
     fig12      Figure 12: XMark Q1-Q20 speedups across document sizes
     micro      Section 3/4 premise: % (rownum) vs # (rowid) operator cost,
                and staircase-join step throughput
     physical   boxed logical executor vs the typed physical layer;
                writes BENCH_physical.json
     parallel   morsel-driven scaling at jobs = 1/2/4/8;
                writes BENCH_parallel.json
     rewrite    the logical rewriter on vs off over join-bearing queries;
                writes BENCH_rewrite.json
     joingraph  join-graph isolation on vs off (Q9 vs Q8 headline ratio);
                writes BENCH_joingraph.json
     serve      the query server under concurrent clients: capacity and
                2x-overload phases, throughput + p50/p99 + shed counts;
                writes BENCH_serve.json
     storage    packed columns vs boxed arrays (bytes/node), monolithic vs
                chunked ingest (MB/s), snapshot save/load vs re-parse;
                writes BENCH_storage.json
     scan       compressed execution on vs off: bulk packed-column scans
                and dictionary-code predicates, byte-parity asserted in
                the same run; writes BENCH_scan.json

   Run with no arguments to execute everything; pass experiment names to
   select. Environment knobs:
     XRQ_CUTOFF        per-query cutoff in seconds (default 30, as in the paper)
     XRQ_SCALES        comma-separated XMark scale factors for fig12
     XRQ_TABLE2_SCALE  XMark scale for the Q11 profile (default 0.02)
     XRQ_PHYS_SCALE    XMark scale for the physical experiment (default 0.05)
     XRQ_BENCH_OUT     output path for BENCH_physical.json
     XRQ_PAR_SCALE     XMark scale for the parallel experiment (default 0.05)
     XRQ_PAR_OUT       output path for BENCH_parallel.json
     XRQ_RW_SCALE      XMark scale for the rewrite experiment (default 0.05)
     XRQ_RW_OUT        output path for BENCH_rewrite.json
     XRQ_JG_SCALE      XMark scale for the joingraph experiment (default 0.05)
     XRQ_JG_OUT        output path for BENCH_joingraph.json
     XRQ_JG_MAX_RATIO  fail (exit 1) when q9/q8 with isolation on exceeds
                       this ratio (the CI guard; unset = report only)
     XRQ_SERVE_SCALE   XMark scale for the serve experiment (default 0.02)
     XRQ_SERVE_REQS    requests per client in each serve phase (default 40)
     XRQ_SERVE_OUT     output path for BENCH_serve.json
     XRQ_STORAGE_SCALES comma-separated scales for storage (default 0.01,0.05)
     XRQ_STORAGE_OUT   output path for BENCH_storage.json
     XRQ_SCAN_SCALE    XMark scale for the scan experiment (default 0.1)
     XRQ_SCAN_OUT      output path for BENCH_scan.json
     XRQ_SCAN_REQUIRE  fail (exit 1) unless the scan run held parity and
                       fired both code predicates and bulk decodes (CI)
     XRQ_STORE_CACHE   directory caching generated stores as snapshots;
                       every experiment's store build goes through it *)

module A = Algebra.Plan

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let mode_unordered = { Engine.default_opts with Engine.mode = Some Xquery.Ast.Unordered }
let mode_unordered_nocda =
  { Engine.default_opts with
    Engine.mode = Some Xquery.Ast.Unordered; Engine.cda = false }

let cutoff =
  try float_of_string (Sys.getenv "XRQ_CUTOFF") with Not_found | Failure _ -> 30.0

(* Build (or reuse) the XMark store for a scale. With XRQ_STORE_CACHE set
   to a directory, the generated+parsed store is saved there as a snapshot
   keyed by scale and format version; later runs load the snapshot instead
   of regenerating — at bench scales the load is far cheaper than
   generate+parse. A .bytes sidecar records the serialized document size
   (the snapshot holds the encoded table, not the XML). *)
let with_store scale f =
  let build () =
    let st = Xmldb.Doc_store.create () in
    let _, bytes = Xmark.Xmark_gen.load ~scale st in
    (st, bytes)
  in
  let st, bytes =
    match Sys.getenv_opt "XRQ_STORE_CACHE" with
    | None | Some "" -> build ()
    | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let key =
        Printf.sprintf "xmark-%g-v%d" scale
          Xmldb.Doc_store.Snapshot.format_version
      in
      let snap = Filename.concat dir (key ^ ".xrqs") in
      let sidecar = Filename.concat dir (key ^ ".bytes") in
      if Sys.file_exists snap && Sys.file_exists sidecar then begin
        let st = Xmldb.Doc_store.Snapshot.load snap in
        let ic = open_in sidecar in
        let bytes =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> int_of_string (String.trim (input_line ic)))
        in
        Printf.printf "[store cache] hit: %s (%d nodes)\n%!" snap
          (Xmldb.Doc_store.total_nodes st);
        (st, bytes)
      end
      else begin
        let st, bytes = build () in
        Xmldb.Doc_store.Snapshot.save st snap;
        let oc = open_out sidecar in
        Printf.fprintf oc "%d\n" bytes;
        close_out oc;
        Printf.printf "[store cache] saved: %s\n%!" snap;
        (st, bytes)
      end
  in
  f st bytes

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Execution time of a precompiled query: repeat short runs (up to 7 or a
   0.5 s budget) and report the minimum — compilation is excluded. *)
let measure_exec ?(budget = 0.5) run =
  let n = ref 0 in
  let best = ref infinity in
  let total = ref 0.0 in
  let items = ref 0 in
  (* always at least two runs: single-run variance dominates at sizes
     where one execution exceeds the budget *)
  while (!n < 7 && !total < budget) || !n < 2 do
    let t0 = Unix.gettimeofday () in
    items := run ();
    let dt = Unix.gettimeofday () -. t0 in
    best := Float.min !best dt;
    total := !total +. dt;
    incr n
  done;
  (!items, !best)

(* ------------------------------------------------------------------ fig6 *)

let q6 = Xmark.Xmark_queries.q6

let fig6 () =
  section "Figure 6 — plan emitted for XMark Q6 under varying ordering mode";
  let _, raw_ord, _ = Engine.plans_of ~opts:Engine.ordered_baseline q6 in
  let _, raw_unord, _ = Engine.plans_of ~opts:mode_unordered_nocda q6 in
  Printf.printf "\n(a) ordering mode ordered:   %s\n" (Algebra.Plan_pp.summary raw_ord);
  print_string (Algebra.Plan_pp.to_tree raw_ord);
  Printf.printf "\n(b) ordering mode unordered: %s\n" (Algebra.Plan_pp.summary raw_unord);
  print_string (Algebra.Plan_pp.to_tree raw_unord);
  Printf.printf
    "\npaper: the ordered plan carries 5 %% operators; under unordered all\n\
     but the result numbering (iter->seq, interaction 4) trade %% for #.\n";
  Printf.printf "measured: ordered %d %%; unordered %d %% and %d #\n"
    (A.count_kind raw_ord "%") (A.count_kind raw_unord "%")
    (A.count_kind raw_unord "#")

(* ------------------------------------------------------------------ fig9 *)

let fig9 () =
  section "Figure 9 — Q6 plan after column dependency analysis";
  let _, _, opt = Engine.plans_of ~opts:mode_unordered q6 in
  print_string (Algebra.Plan_pp.to_tree opt);
  Printf.printf "\n%s\n" (Algebra.Plan_pp.summary opt);
  Printf.printf
    "paper: order is (almost) no concern; the residual %%pos1 degrades to a\n\
     free # via constant/arbitrary column properties (Section 7).\n\
     measured: %d %% operators remain.\n"
    (A.count_kind opt "%")

(* ----------------------------------------------------------------- fig10 *)

let fig10 () =
  section "Figure 10 — unordered { $t//(c|d) }: '|' traded for ','";
  let q = {|let $t := doc("auction.xml") return unordered { $t//(c|d) }|} in
  let _, raw, opt = Engine.plans_of ~opts:Engine.default_opts q in
  Printf.printf "\nbefore column dependency analysis: %s\n" (Algebra.Plan_pp.summary raw);
  Printf.printf "after:                             %s\n\n" (Algebra.Plan_pp.summary opt);
  print_string (Algebra.Plan_pp.to_tree opt);
  Printf.printf
    "\npaper: the document order-aware union is cut down to sequence\n\
     concatenation (a plain disjoint union), no sort remains.\n\
     measured: %d %% operators; union survives as append: %b\n"
    (A.count_kind opt "%")
    (A.count_kind opt "∪" > 0)

(* ---------------------------------------------------------------- table2 *)

let table2 () =
  section "Table 2 — profile breakdown for XMark Q11";
  let scale =
    try float_of_string (Sys.getenv "XRQ_TABLE2_SCALE")
    with Not_found | Failure _ -> 0.02
  in
  with_store scale (fun st bytes ->
      Printf.printf "auction.xml: %.2f MB serialized, %d nodes\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st);
      let run_profiled name opts =
        let r, secs =
          time (fun () ->
              Engine.run ~opts ~with_profile:true st Xmark.Xmark_queries.q11)
        in
        Printf.printf "--- %s (%d result items, %.1f ms total) ---\n"
          name (List.length r.Engine.items) (secs *. 1000.0);
        (match r.Engine.profile with
         | Some p -> print_string (Algebra.Profile.to_string p)
         | None -> ());
        print_newline ();
        secs
      in
      let t_ord = run_profiled "ordering mode ordered (baseline)" Engine.ordered_baseline in
      let t_un = run_profiled "order indifference exploited" mode_unordered in
      Printf.printf
        "paper: join (45%%) and the iter->seq reorder (45%%) dominate the\n\
         ordered run; exploiting order indifference removes the reorder\n\
         share, saving 45%% of execution time.\n\
         measured end-to-end: %.1f ms -> %.1f ms (%.0f%% speedup)\n"
        (t_ord *. 1000.) (t_un *. 1000.)
        ((t_ord /. t_un -. 1.0) *. 100.))

(* ------------------------------------------------------------- plansizes *)

let has_descendant_step p =
  List.exists
    (fun (n : A.node) ->
       match n.A.op with
       | A.Step { axis = Xmldb.Axis.Descendant; _ } -> true
       | _ -> false)
    (A.topo_order p)

let plansizes () =
  section "In-text — plan sizes before/after column dependency analysis";
  Printf.printf "%-5s %15s %15s %20s %14s\n" "query"
    "ordered (raw)" "unord (raw)" "unord + CDA" "steps merged";
  List.iter
    (fun (name, q) ->
       let _, raw_ord, _ = Engine.plans_of ~opts:Engine.ordered_baseline q in
       let _, raw_un, opt = Engine.plans_of ~opts:mode_unordered q in
       let merged = has_descendant_step opt && not (has_descendant_step raw_un) in
       Printf.printf "%-5s %11d ops %11d ops %10d ops (%d %%) %12s\n" name
         (A.count_ops raw_ord) (A.count_ops raw_un) (A.count_ops opt)
         (A.count_kind opt "%")
         (if merged then "yes" else "-"))
    Xmark.Xmark_queries.all;
  let _, raw, opt = Engine.plans_of ~opts:mode_unordered Xmark.Xmark_queries.q11 in
  Printf.printf
    "\npaper (Q11): the initial DAG of 235 operators is cut down to 141 (-40%%).\n\
     measured (Q11): %d -> %d operators (-%.0f%%).\n"
    (A.count_ops raw) (A.count_ops opt)
    (100.0
     *. (1.0 -. (float_of_int (A.count_ops opt) /. float_of_int (A.count_ops raw))))

(* ----------------------------------------------------------------- fig12 *)

let default_scales = [ 0.002; 0.01; 0.05; 0.2 ]

let fig12_scales () =
  match Sys.getenv_opt "XRQ_SCALES" with
  | None -> default_scales
  | Some s -> List.map float_of_string (String.split_on_char ',' (String.trim s))

let fig12 () =
  section "Figure 12 — observed impact of order indifference (speedup), XMark Q1-Q20";
  Printf.printf
    "speedup = t(ordered baseline) / t(order indifference exploited) - 1,\n\
     in %%; per-query cutoff %.0f s (the paper's setting); '-' = not run\n\
     (exceeded or predicted to exceed the cutoff).\n\n%!"
    cutoff;
  let scales = fig12_scales () in
  let nscales = List.length scales in
  let qnames = List.map fst Xmark.Xmark_queries.all in
  let cells : (string * int, float option) Hashtbl.t = Hashtbl.create 128 in
  let sizes_mb = Array.make nscales 0.0 in
  let last_time : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let skipped : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun si scale ->
       with_store scale (fun st bytes ->
           let mb = float_of_int bytes /. 1e6 in
           sizes_mb.(si) <- mb;
           Printf.printf "--- document size %.2f MB (scale %g, %d nodes) ---\n%!"
             mb scale (Xmldb.Doc_store.total_nodes st);
           List.iter
             (fun (name, q) ->
                let predicted_blowup =
                  match Hashtbl.find_opt last_time name with
                  | Some t when si > 0 ->
                    (* assume up to quadratic growth in document size *)
                    let ratio =
                      List.nth scales si /. List.nth scales (si - 1)
                    in
                    t *. ratio *. ratio > cutoff
                  | _ -> false
                in
                if Hashtbl.mem skipped name || predicted_blowup then begin
                  Hashtbl.replace skipped name ();
                  Hashtbl.replace cells (name, si) None;
                  Printf.printf "%-4s %10s\n%!" name "-"
                end
                else begin
                  let _, run_base = Engine.prepare ~opts:Engine.ordered_baseline st q in
                  let _, run_un = Engine.prepare ~opts:mode_unordered st q in
                  let n1, t_base = measure_exec run_base in
                  let n2, t_un = measure_exec run_un in
                  Hashtbl.replace last_time name (Float.max t_base t_un);
                  if Float.max t_base t_un > cutoff then
                    Hashtbl.replace skipped name ();
                  let speedup = (t_base /. t_un -. 1.0) *. 100.0 in
                  Hashtbl.replace cells (name, si) (Some speedup);
                  Printf.printf
                    "%-4s %9.1f ms -> %9.1f ms   speedup %7.0f%%%s\n%!" name
                    (t_base *. 1000.) (t_un *. 1000.) speedup
                    (if n1 <> n2 then "  !! result count mismatch" else "")
                end)
             Xmark.Xmark_queries.all))
    scales;
  Printf.printf "\nspeedup matrix [%%] (rows: queries; columns: document size):\n\n";
  Printf.printf "%-5s" "";
  Array.iter (fun mb -> Printf.printf " %9s" (Printf.sprintf "%.2fMB" mb)) sizes_mb;
  print_newline ();
  List.iter
    (fun name ->
       Printf.printf "%-5s" name;
       for si = 0 to nscales - 1 do
         match Hashtbl.find_opt cells (name, si) with
         | Some (Some s) -> Printf.printf " %8.0f%%" s
         | _ -> Printf.printf " %9s" "-"
       done;
       print_newline ())
    qnames;
  Printf.printf
    "\npaper: speedups range from 0%% to 10,000%%; Q6 and Q7 are exceptional\n\
     because removing the %% between adjacent steps lets them merge into a\n\
     single descendant step.\n"

(* ----------------------------------------------------------------- micro *)

(* Bechamel-based micro benchmark of the engine-level premise: the rownum
   primitive % sorts, the rowid primitive # stamps. *)
let bechamel_run tests =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                   ~predictors:[| Measure.run |]) instance raw
  in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)

let micro () =
  section "Micro — % (rownum, sorts) vs # (rowid, free); staircase join";
  let st = Xmldb.Doc_store.create () in
  let sizes = [ 1_000; 10_000; 100_000 ] in
  let tests =
    List.concat_map
      (fun n ->
         let b = A.builder () in
         let rng = Basis.Prng.create 7 in
         let rows =
           List.init n (fun i ->
               [| Algebra.Value.Int (1 + (i mod 97));
                  Algebra.Value.Int (Basis.Prng.int rng 1000000) |])
         in
         let t = A.lit b [| "iter"; "item" |] rows in
         let input = Algebra.Eval.run st t in
         ignore input;
         let rn = A.rownum b t "pos" [ ("item", A.Asc) ] (Some "iter") in
         let ri = A.rowid b t "pos" in
         let eval_over node () =
           (* the literal re-evaluates from its row list; both arms pay it *)
           ignore (Algebra.Eval.run st node)
         in
         [ Bechamel.Test.make
             ~name:(Printf.sprintf "rownum %% n=%d" n)
             (Bechamel.Staged.stage (eval_over rn));
           Bechamel.Test.make
             ~name:(Printf.sprintf "rowid  # n=%d" n)
             (Bechamel.Staged.stage (eval_over ri)) ])
      sizes
  in
  bechamel_run
    (Bechamel.Test.make_grouped ~name:"order primitives" tests);
  (* the wall-clock view at the largest size, input evaluation excluded *)
  List.iter
    (fun n ->
       let b = A.builder () in
       let rng = Basis.Prng.create 7 in
       let rows =
         List.init n (fun i ->
             [| Algebra.Value.Int (1 + (i mod 97));
                Algebra.Value.Int (Basis.Prng.int rng 1000000) |])
       in
       let t = A.lit b [| "iter"; "item" |] rows in
       let rn = A.rownum b t "pos" [ ("item", A.Asc) ] (Some "iter") in
       let ri = A.rowid b t "pos" in
       let measure node =
         let c = Algebra.Eval.create st in
         ignore (Algebra.Eval.eval c t);
         let t0 = Unix.gettimeofday () in
         ignore (Algebra.Eval.eval c node);
         Unix.gettimeofday () -. t0
       in
       let t_rownum = measure rn and t_rowid = measure ri in
       Printf.printf
         "n = %9d   %%: %9.2f ms   #: %9.2f ms   ratio %5.1fx\n%!" n
         (t_rownum *. 1000.) (t_rowid *. 1000.)
         (t_rownum /. Float.max 1e-9 t_rowid))
    [ 1_000_000 ];
  let st = Xmldb.Doc_store.create () in
  let root, bytes = Xmark.Xmark_gen.load ~scale:0.05 st in
  let _, t_desc =
    time (fun () ->
        Xmldb.Staircase.step st Xmldb.Axis.Descendant Xmldb.Node_test.Any_node
          [| root |])
  in
  let nodes = Xmldb.Doc_store.total_nodes st in
  Printf.printf
    "\nstaircase descendant::node() over %.1f MB (%d nodes): %.2f ms (%.1f M nodes/s)\n"
    (float_of_int bytes /. 1e6) nodes (t_desc *. 1000.)
    (float_of_int nodes /. t_desc /. 1e6);
  (* the pluggable ⊘ implementations on a selective tag (paper, Section 3:
     TwigStack-style element streams vs staircase scan) *)
  let ti = Xmldb.Tag_index.create st in
  let test_tag tag =
    let t' = Xmldb.Node_test.Name (Xmldb.Doc_store.name_test_id st (Xmldb.Qname.make tag)) in
    let r1, t_scan =
      time (fun () -> Xmldb.Staircase.step st Xmldb.Axis.Descendant t' [| root |])
    in
    ignore (Xmldb.Tag_index.step ti Xmldb.Axis.Descendant t' [| root |]);
    let r2, t_idx =
      time (fun () -> Xmldb.Tag_index.step ti Xmldb.Axis.Descendant t' [| root |])
    in
    Printf.printf
      "descendant::%-10s %6d nodes   scan %8.3f ms   tag-index %8.3f ms (warm)%s\n"
      tag (Array.length r1) (t_scan *. 1000.) (t_idx *. 1000.)
      (if Array.length r1 <> Array.length r2 then "  !! mismatch" else "")
  in
  List.iter test_tag [ "item"; "keyword"; "person"; "emph" ]

(* --------------------------------------------------------------- sharing *)

(* The DAG-evaluation dividend: how much work plan sharing saves at
   runtime (tree vs DAG node counts, Tree vs Dag evaluation wall time),
   and what the prepared-plan cache buys a repeated-query workload. *)
let sharing () =
  section "Sharing — DAG vs tree evaluation; the prepared-plan cache";
  let fig10_q = {|let $t := doc("auction.xml") return unordered { $t//(c|d) }|} in
  let paper_queries =
    [ ("fig10", fig10_q); ("Q6", q6); ("Q11", Xmark.Xmark_queries.q11) ]
  in
  Printf.printf "\nsharing factor (optimized plans, default_opts):\n\n";
  Printf.printf "%-6s %10s %12s %9s\n" "query" "DAG nodes" "tree nodes" "factor";
  let max_factor = ref 0.0 in
  List.iter
    (fun (name, q) ->
       let _, _, opt = Engine.plans_of ~opts:mode_unordered q in
       let dag = A.count_ops opt and tree = A.count_tree_nodes opt in
       let f = A.sharing_factor opt in
       max_factor := Float.max !max_factor f;
       Printf.printf "%-6s %10d %12d %8.2fx\n" name dag tree f)
    (paper_queries @ Xmark.Xmark_queries.all);
  Printf.printf
    "\nany factor > 1 means the memoizing executor evaluates strictly\n\
     fewer operators than a tree walk; largest here: %.2fx\n" !max_factor;
  (* Tree vs Dag evaluation of the same optimized plan *)
  with_store 0.01 (fun st _ ->
      Printf.printf "\ntree vs DAG evaluation (same plan, same store, scale 0.01):\n\n";
      Printf.printf "%-6s %12s %12s %12s %12s\n" "query" "DAG evals"
        "tree evals" "DAG ms" "tree ms";
      List.iter
        (fun (name, q) ->
           let _, _, opt = Engine.plans_of ~opts:mode_unordered q in
           let measure mode =
             let ctx = Algebra.Eval.create ~mode st in
             let t0 = Unix.gettimeofday () in
             ignore (Algebra.Eval.eval ctx opt);
             (Algebra.Eval.evals ctx, Unix.gettimeofday () -. t0)
           in
           let ed, td = measure Algebra.Eval.Dag in
           let et, tt = measure Algebra.Eval.Tree in
           Printf.printf "%-6s %12d %12d %10.2fms %10.2fms\n" name ed et
             (td *. 1000.) (tt *. 1000.))
        paper_queries);
  (* repeated-query throughput: full Engine.run, cold vs warm plan cache.
     Tiny store: the point is the per-dispatch parse+compile tax, which is
     store-independent — the cache's win on any workload where queries
     repeat. *)
  with_store 0.001 (fun st _ ->
      let workload =
        paper_queries
        @ List.filter
            (fun (n, _) ->
               List.mem n [ "Q3"; "Q4"; "Q10"; "Q12"; "Q19"; "Q20" ])
            Xmark.Xmark_queries.all
      in
      let rounds = 30 in
      let run_all ?cache () =
        List.iter
          (fun (_, q) ->
             ignore (Engine.run ?cache ~opts:mode_unordered st q))
          workload
      in
      let _, t_nocache =
        time (fun () -> for _ = 1 to rounds do run_all () done)
      in
      let cache = Engine.create_cache ~capacity:64 () in
      run_all ~cache ();  (* warm it *)
      let _, t_warm =
        time (fun () -> for _ = 1 to rounds do run_all ~cache () done)
      in
      let n = rounds * List.length workload in
      Printf.printf
        "\nrepeated-query workload (%d queries/round, %d rounds, scale 0.001):\n\n"
        (List.length workload) rounds;
      Printf.printf "  no plan cache:   %8.1f ms  (%7.0f queries/s)\n"
        (t_nocache *. 1000.) (float_of_int n /. t_nocache);
      Printf.printf "  warm plan cache: %8.1f ms  (%7.0f queries/s)\n"
        (t_warm *. 1000.) (float_of_int n /. t_warm);
      Printf.printf "  speedup: %.2fx   cache: %s\n"
        (t_nocache /. t_warm)
        (Engine.Plan_cache.stats_to_string (Engine.cache_stats cache)))

(* -------------------------------------------------------------- ablation *)

(* Which mechanism contributes what: the Figure-7 rules alone, CDA alone,
   both, hoisting, and the alternative step implementation. *)
let ablation () =
  section "Ablation — contribution of each mechanism (execution time, ms)";
  let stages =
    [ ("baseline (ordered, no opt)", Engine.ordered_baseline);
      ("rules only (unord, no CDA)", mode_unordered_nocda);
      ("CDA only (ordered)",
       { Engine.default_opts with Engine.mode = Some Xquery.Ast.Ordered });
      ("rules + CDA (full)", mode_unordered);
      ("full, hoisting off",
       { mode_unordered with Engine.hoist = false });
      ("full, join recognition off",
       { mode_unordered with Engine.join_rec = false });
      ("full, tag-index steps",
       { mode_unordered with Engine.step_impl = Algebra.Eval.Tag_index }) ]
  in
  let queries = [ "Q1"; "Q5"; "Q6"; "Q8"; "Q11"; "Q14"; "Q19"; "Q20" ] in
  let scale =
    try float_of_string (Sys.getenv "XRQ_ABLATION_SCALE")
    with Not_found | Failure _ -> 0.02
  in
  with_store scale (fun st bytes ->
      Printf.printf "auction.xml: %.2f MB

" (float_of_int bytes /. 1e6);
      Printf.printf "%-28s" "";
      List.iter (fun q -> Printf.printf " %9s" q) queries;
      print_newline ();
      List.iter
        (fun (name, opts) ->
           Printf.printf "%-28s" name;
           List.iter
             (fun qn ->
                let _, run = Engine.prepare ~opts st (Xmark.Xmark_queries.get qn) in
                let _, t = measure_exec run in
                Printf.printf " %7.1fms" (t *. 1000.))
             queries;
           print_newline ())
        stages;
      Printf.printf
        "
Reading guide: rules without CDA barely help (the dead %% chains
         remain, Section 4.1); CDA alone helps ordered plans a little
         (intermediate path sorts whose pos is consumed by a next step);
         only rules + CDA realizes the full effect. Hoisting matters for
         queries with loop-invariant paths (Q8/Q11); tag-indexed steps
         trade scan time for stream lookups on selective tags.
")

(* -------------------------------------------------------------- physical *)

(* The physical-plan dividend: the same optimized logical DAG executed by
   the boxed logical executor vs lowered to typed columns, selection
   vectors and fused kernels. Covers the paper queries (fig10, Q6, Q11)
   via the full XMark corpus and writes a machine-readable baseline to
   BENCH_physical.json (override with XRQ_BENCH_OUT; document scale with
   XRQ_PHYS_SCALE, default 0.05). *)
let physical () =
  section "Physical — boxed logical executor vs typed physical layer";
  let scale =
    try float_of_string (Sys.getenv "XRQ_PHYS_SCALE")
    with Not_found | Failure _ -> 0.05
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_BENCH_OUT") ~default:"BENCH_physical.json"
  in
  let boxed_opts = { Engine.default_opts with Engine.physical = `Off } in
  let fig10_q = {|let $t := doc("auction.xml") return unordered { $t//(c|d) }|} in
  let queries = ("fig10", fig10_q) :: Xmark.Xmark_queries.all in
  with_store scale (fun st bytes ->
      Printf.printf "auction.xml: %.2f MB serialized, %d nodes\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st);
      Printf.printf "%-6s %12s %12s %9s %8s\n" "query" "boxed" "physical"
        "speedup" "items";
      let rows =
        List.map
          (fun (name, q) ->
             let _, run_boxed = Engine.prepare ~opts:boxed_opts st q in
             let _, run_phys = Engine.prepare ~opts:Engine.default_opts st q in
             let n_b, t_b = measure_exec run_boxed in
             let n_p, t_p = measure_exec run_phys in
             Printf.printf "%-6s %10.2fms %10.2fms %8.2fx %8d%s\n%!" name
               (t_b *. 1000.) (t_p *. 1000.) (t_b /. t_p) n_p
               (if n_b <> n_p then "  !! result count mismatch" else "");
             (name, t_b, t_p, n_p, n_b = n_p))
          queries
      in
      let best_name, best =
        List.fold_left
          (fun (bn, bs) (name, t_b, t_p, _, _) ->
             let s = t_b /. t_p in
             if s > bs then (name, s) else (bn, bs))
          ("-", 0.0) rows
      in
      Printf.printf
        "\nbest speedup: %.2fx on %s (typed theta-join coercion, typed\n\
         sort keys and kernel fusion; columns that stay heterogeneous\n\
         fall back to the boxed kernels at zero copy).\n"
        best best_name;
      let oc = open_out out_path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"physical\",\n  \"scale\": %g,\n\
        \  \"document_bytes\": %d,\n  \"queries\": [\n" scale bytes;
      List.iteri
        (fun i (name, t_b, t_p, n_p, parity) ->
           Printf.fprintf oc
             "    { \"query\": %S, \"boxed_ms\": %.3f, \"physical_ms\": %.3f, \
              \"speedup\": %.3f, \"items\": %d, \"count_parity\": %b }%s\n"
             name (t_b *. 1000.) (t_p *. 1000.) (t_b /. t_p) n_p parity
             (if i < List.length rows - 1 then "," else ""))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" out_path)

(* -------------------------------------------------------------- parallel *)

(* Morsel-driven scaling: the same prepared physical plan executed at
   jobs = 1, 2, 4, 8 over the XMark corpus. Results are parity-checked
   per width (identical item counts — the full row-level parity lives in
   test_parallel.ml); the JSON baseline records per-width times, the
   speedup at 4 domains, and the host's core count. The baseline's
   "mode" field says what was measured: "scaling" on a multi-core host,
   "overhead" on a single core (where a best case of ~1.0x means the
   adaptive morsel policy got out of the way). Knobs: XRQ_PAR_SCALE
   (default 0.05), XRQ_PAR_OUT (default BENCH_parallel.json). *)
let parallel_bench () =
  section "Parallel — morsel-driven scaling of the physical executor";
  let scale =
    try float_of_string (Sys.getenv "XRQ_PAR_SCALE")
    with Not_found | Failure _ -> 0.05
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_PAR_OUT") ~default:"BENCH_parallel.json"
  in
  let widths = [ 1; 2; 4; 8 ] in
  let host_cores = Basis.Pool.recommended_jobs () in
  with_store scale (fun st bytes ->
      Printf.printf
        "auction.xml: %.2f MB serialized, %d nodes; host cores: %d\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st)
        host_cores;
      Printf.printf "%-6s" "query";
      List.iter (fun j -> Printf.printf " %9s" (Printf.sprintf "jobs=%d" j)) widths;
      Printf.printf " %9s %7s\n" "x at 4" "items";
      let rows =
        List.map
          (fun (name, q) ->
             let per_width =
               List.map
                 (fun jobs ->
                    let opts = { Engine.default_opts with Engine.jobs = jobs } in
                    let _, run = Engine.prepare ~opts st q in
                    let n, t = measure_exec run in
                    (jobs, n, t))
                 widths
             in
             let _, n1, t1 = List.hd per_width in
             let _, _, t4 = List.nth per_width 2 in
             let parity =
               List.for_all (fun (_, n, _) -> n = n1) per_width
             in
             Printf.printf "%-6s" name;
             List.iter
               (fun (_, _, t) -> Printf.printf " %7.1fms" (t *. 1000.))
               per_width;
             Printf.printf " %8.2fx %7d%s\n%!" (t1 /. t4) n1
               (if parity then "" else "  !! result count mismatch");
             (name, per_width, t1 /. t4, parity))
          Xmark.Xmark_queries.all
      in
      let scaled =
        List.filter (fun (_, _, s, _) -> s >= 1.7) rows |> List.length
      in
      Printf.printf
        "\n%d queries reach >= 1.7x at 4 domains on this %d-core host.\n\
         (Morsel scaling needs real cores: on a single-core host the\n\
         deterministic merge discipline caps the best case at ~1.0x.)\n"
        scaled host_cores;
      (* What this baseline measures depends on the host: with real cores
         it is a scaling experiment; on a single core it is an overhead
         experiment — jobs = 4 should stay near jobs = 1 because the
         adaptive morsel policy hands one span to each domain when rows
         are few and caps span count near the worker count when rows are
         plentiful. Either way the numbers are honest for what they
         claim; [degraded] now means the numbers themselves are suspect:
         a result-count parity failure, or single-core overhead beyond
         30% on some query (the morsel machinery failed to get out of
         the way). *)
      let mode = if host_cores > 1 then "scaling" else "overhead" in
      let min_speedup4 =
        List.fold_left (fun acc (_, _, s, _) -> min acc s) infinity rows
      in
      let all_parity = List.for_all (fun (_, _, _, p) -> p) rows in
      let degraded =
        (not all_parity) || (host_cores <= 1 && min_speedup4 < 0.7)
      in
      Printf.printf
        "mode: %s; worst speedup at 4 domains: %.2fx%s\n" mode
        min_speedup4
        (if degraded then
           " — DEGRADED baseline (parity failure or uncontained overhead)"
         else "");
      let oc = open_out out_path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"parallel\",\n  \"scale\": %g,\n\
        \  \"document_bytes\": %d,\n  \"host_cores\": %d,\n\
        \  \"mode\": %S,\n  \"min_speedup_at_4\": %.3f,\n\
        \  \"degraded\": %b,\n\
        \  \"jobs\": [%s],\n  \"queries\": [\n"
        scale bytes host_cores mode min_speedup4 degraded
        (String.concat ", " (List.map string_of_int widths));
      List.iteri
        (fun i (name, per_width, speedup4, parity) ->
           let times =
             String.concat ", "
               (List.map
                  (fun (j, _, t) ->
                     Printf.sprintf "\"%d\": %.3f" j (t *. 1000.))
                  per_width)
           in
           let _, items, _ = List.hd per_width in
           Printf.fprintf oc
             "    { \"query\": %S, \"ms\": {%s}, \"speedup_at_4\": %.3f, \
              \"items\": %d, \"count_parity\": %b }%s\n"
             name times speedup4 items parity
             (if i < List.length rows - 1 then "," else ""))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" out_path)

(* The join-graph isolation headline queries (queries/README.md): an
   anti-join and a semi-join existential whose count-then-filter
   scaffolds the jg-* rules collapse. The jg-* rules run inside the same
   rewrite fixpoint, so rewrite-off is also isolation-off. *)
let xpath_ex =
  {|let $auction := doc("auction.xml")
return
  for $p in $auction/site/people/person
  where empty(for $t in $auction/site/closed_auctions/closed_auction
              where $t/buyer/@person = $p/@id
              return $t)
  return <quiet>{ $p/name/text() }</quiet>|}

let quant_semi =
  {|let $auction := doc("auction.xml")
return
  for $a in $auction/site/open_auctions/open_auction
  where some $b in $a/bidder/increase
        satisfies $b >= 2 * zero-or-one($a/initial)
  return <hot>{ $a/reserve/text() }</hot>|}

(* --------------------------------------------------------------- rewrite *)

(* The logical rewriter's dividend: join-bearing queries prepared with the
   rewriter on (default) vs off, same store, same physical backend. The
   headline query is the existential value join — loop-lifting compiles
   the predicate's general comparison into a sigma-filtered cross product,
   and the select-pushdown -> join-reassociation -> join-synthesis chain
   turns that into a hash theta join, converting quadratic work to linear.
   Writes BENCH_rewrite.json (override XRQ_RW_OUT; scale XRQ_RW_SCALE,
   default 0.05). *)
let rewrite_bench () =
  section "Rewrite — logical rewriter on vs off";
  let scale =
    try float_of_string (Sys.getenv "XRQ_RW_SCALE")
    with Not_found | Failure _ -> 0.05
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_RW_OUT") ~default:"BENCH_rewrite.json"
  in
  let norewrite_opts = { Engine.default_opts with Engine.rewrite = false } in
  let exjoin =
    {|let $auction := doc("auction.xml")
return count($auction/site/people/person[@id =
    $auction/site/closed_auctions/closed_auction/buyer/@person])|}
  in
  let queries =
    [ ("exjoin", exjoin);
      ("xpathex", xpath_ex);
      ("quantsj", quant_semi);
      ("q8", Xmark.Xmark_queries.q8);
      ("q10", Xmark.Xmark_queries.q10);
      ("q11", Xmark.Xmark_queries.q11);
      ("q6", q6) ]
  in
  with_store scale (fun st bytes ->
      Printf.printf "auction.xml: %.2f MB serialized, %d nodes\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st);
      Printf.printf "%-8s %12s %12s %9s %8s\n" "query" "off" "on" "speedup"
        "items";
      let rows =
        List.map
          (fun (name, q) ->
             let _, run_off = Engine.prepare ~opts:norewrite_opts st q in
             let _, run_on = Engine.prepare ~opts:Engine.default_opts st q in
             let n_off, t_off = measure_exec run_off in
             let n_on, t_on = measure_exec run_on in
             Printf.printf "%-8s %10.2fms %10.2fms %8.2fx %8d%s\n%!" name
               (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) n_on
               (if n_off <> n_on then "  !! result count mismatch" else "");
             (name, t_off, t_on, n_on, n_off = n_on))
          queries
      in
      let best_name, best =
        List.fold_left
          (fun (bn, bs) (name, t_off, t_on, _, _) ->
             let s = t_off /. t_on in
             if s > bs then (name, s) else (bn, bs))
          ("-", 0.0) rows
      in
      Printf.printf
        "\nbest speedup: %.2fx on %s (join synthesis over the compiled\n\
         cross product; the remaining queries bound the rewriter's\n\
         overhead where no join is synthesized).\n"
        best best_name;
      let oc = open_out out_path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"rewrite\",\n  \"scale\": %g,\n\
        \  \"document_bytes\": %d,\n  \"queries\": [\n" scale bytes;
      List.iteri
        (fun i (name, t_off, t_on, n_on, parity) ->
           Printf.fprintf oc
             "    { \"query\": %S, \"no_rewrite_ms\": %.3f, \
              \"rewrite_ms\": %.3f, \"speedup\": %.3f, \"items\": %d, \
              \"count_parity\": %b }%s\n"
             name (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) n_on
             parity
             (if i < List.length rows - 1 then "," else ""))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" out_path)

(* ------------------------------------------------------------- joingraph *)

(* Join-graph isolation on vs off: the corpus outlier Q9 (a value
   equijoin hidden behind an intervening let), its scaffold-free sibling
   Q8, the other join-bearing XMark queries, and the two existential
   headline queries. The headline number is Q9's time relative to Q8
   with isolation on — the pass's goal is to bring the outlier onto the
   same curve. Writes BENCH_joingraph.json (override XRQ_JG_OUT; scale
   XRQ_JG_SCALE, default 0.05). With XRQ_JG_MAX_RATIO set, exits
   nonzero when the on-ratio exceeds it (the CI guard). *)
let joingraph_bench () =
  section "Joingraph — join-graph isolation on vs off";
  let scale =
    try float_of_string (Sys.getenv "XRQ_JG_SCALE")
    with Not_found | Failure _ -> 0.05
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_JG_OUT") ~default:"BENCH_joingraph.json"
  in
  let off_opts = { Engine.default_opts with Engine.join_isolation = false } in
  let queries =
    [ ("q8", Xmark.Xmark_queries.q8);
      ("q9", Xmark.Xmark_queries.q9);
      ("q4", Xmark.Xmark_queries.q4);
      ("q16", Xmark.Xmark_queries.q16);
      ("q17", Xmark.Xmark_queries.q17);
      ("q20", Xmark.Xmark_queries.q20);
      ("xpathex", xpath_ex);
      ("quantsj", quant_semi) ]
  in
  with_store scale (fun st bytes ->
      Printf.printf "auction.xml: %.2f MB serialized, %d nodes\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st);
      Printf.printf "%-8s %12s %12s %9s %8s\n" "query" "off" "on" "speedup"
        "items";
      let rows =
        List.map
          (fun (name, q) ->
             let _, run_off = Engine.prepare ~opts:off_opts st q in
             let plan_on, run_on =
               Engine.prepare ~opts:Engine.default_opts st q
             in
             let n_off, t_off = measure_exec run_off in
             let n_on, t_on = measure_exec run_on in
             let s_on =
               match plan_on with
               | Some p -> Algebra.Joingraph.summary_to_string
                             (Algebra.Joingraph.summary p)
               | None -> "-"
             in
             Printf.printf "%-8s %10.2fms %10.2fms %8.2fx %8d%s\n%!" name
               (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) n_on
               (if n_off <> n_on then "  !! result count mismatch" else "");
             Printf.printf "         join graph (on): %s\n%!" s_on;
             (name, t_off, t_on, n_on, n_off = n_on))
          queries
      in
      let t_of n =
        List.find_map
          (fun (name, _, t_on, _, _) -> if name = n then Some t_on else None)
          rows
      in
      let ratio =
        match (t_of "q9", t_of "q8") with
        | Some t9, Some t8 when t8 > 0. -> t9 /. t8
        | _ -> nan
      in
      Printf.printf
        "\nq9 vs q8 with isolation on: %.2fx (the outlier pulled onto the \
         corpus curve)\n"
        ratio;
      let oc = open_out out_path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"joingraph\",\n  \"scale\": %g,\n\
        \  \"document_bytes\": %d,\n  \"q9_vs_q8\": %.3f,\n\
        \  \"queries\": [\n"
        scale bytes ratio;
      List.iteri
        (fun i (name, t_off, t_on, n_on, parity) ->
           Printf.fprintf oc
             "    { \"query\": %S, \"no_isolation_ms\": %.3f, \
              \"isolation_ms\": %.3f, \"speedup\": %.3f, \"items\": %d, \
              \"count_parity\": %b }%s\n"
             name (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) n_on
             parity
             (if i < List.length rows - 1 then "," else ""))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" out_path;
      match Sys.getenv_opt "XRQ_JG_MAX_RATIO" with
      | Some m -> (
        match float_of_string_opt m with
        | Some max_ratio when ratio > max_ratio ->
          Printf.eprintf
            "joingraph guard: q9/q8 = %.2f exceeds XRQ_JG_MAX_RATIO = %.2f\n"
            ratio max_ratio;
          exit 1
        | Some max_ratio ->
          Printf.printf "joingraph guard: q9/q8 = %.2f within %.2f\n" ratio
            max_ratio
        | None -> ())
      | None -> ())

(* ----------------------------------------------------------------- order *)

(* Ordering-property reasoning on vs off over the paper-query corpus:
   wall time per query, the elision counters (interior sorts elided,
   sorts degraded to merges, root sort skipped), and a three-way parity
   check — serialized results must agree byte-for-byte with the
   sort-preserving plans, in the default mode AND under a forced
   [ordering mode ordered] prolog. Knobs: XRQ_ORDER_SCALE (default
   0.05), XRQ_ORDER_OUT (default BENCH_order.json). *)
let order_bench () =
  section "Order — ordering-property reasoning on vs off, corpus";
  let scale =
    try float_of_string (Sys.getenv "XRQ_ORDER_SCALE")
    with Not_found | Failure _ -> 0.05
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_ORDER_OUT") ~default:"BENCH_order.json"
  in
  let noorder_opts = { Engine.default_opts with Engine.order_props = false } in
  let queries_dir =
    if Sys.file_exists "queries" then "queries" else "../queries"
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let corpus =
    Sys.readdir queries_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xq")
    |> List.sort compare
    |> List.map (fun f ->
        (Filename.chop_suffix f ".xq",
         read_file (Filename.concat queries_dir f)))
  in
  with_store scale (fun st bytes ->
      (* the corpus also touches the toy document t.xml *)
      let _ =
        Xmldb.Xml_parser.load_document st ~uri:"t.xml"
          "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>"
      in
      Printf.printf "auction.xml: %.2f MB serialized, %d nodes\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st);
      Printf.printf "%-18s %10s %10s %8s %6s %6s %5s %6s\n" "query" "off"
        "on" "speedup" "elide" "merge" "root" "parity";
      let rows =
        List.map
          (fun (name, q) ->
             let _, run_off = Engine.prepare ~opts:noorder_opts st q in
             let _, run_on = Engine.prepare ~opts:Engine.default_opts st q in
             let n_off, t_off = measure_exec run_off in
             let n_on, t_on = measure_exec run_on in
             let prof = Engine.run ~with_profile:true st q in
             let elided, merges, root =
               match prof.Engine.profile with
               | Some p ->
                 let ph = Algebra.Profile.phys p in
                 (ph.Algebra.Profile.sorts_elided,
                  ph.Algebra.Profile.sorts_to_merges,
                  ph.Algebra.Profile.root_sort_elided)
               | None -> (0, 0, 0)
             in
             let parity =
               n_off = n_on
               && (let s opts = (Engine.run ~opts st q).Engine.serialized in
                   s Engine.default_opts = s noorder_opts
                   && (let forced o =
                         { o with Engine.mode = Some Xquery.Ast.Ordered }
                       in
                       s (forced Engine.default_opts)
                       = s (forced noorder_opts)))
             in
             Printf.printf
               "%-18s %8.2fms %8.2fms %7.2fx %6d %6d %5d %6s%s\n%!" name
               (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) elided
               merges root
               (if parity then "ok" else "FAIL")
               (if parity then "" else "  !! result mismatch");
             (name, t_off, t_on, n_on, elided, merges, root, parity))
          corpus
      in
      let best_name, best =
        List.fold_left
          (fun (bn, bs) (name, t_off, t_on, _, _, _, _, _) ->
             let s = t_off /. t_on in
             if s > bs then (name, s) else (bn, bs))
          ("-", 0.0) rows
      in
      let total_elided =
        List.fold_left (fun a (_, _, _, _, e, _, _, _) -> a + e) 0 rows
      in
      let total_root =
        List.fold_left (fun a (_, _, _, _, _, _, r, _) -> a + r) 0 rows
      in
      Printf.printf
        "\n%d interior sorts elided and %d root sorts skipped across the\n\
         corpus; best speedup %.2fx on %s. Parity holds iff every elision\n\
         was a proof, not a guess.\n"
        total_elided total_root best best_name;
      let oc = open_out out_path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"order\",\n  \"scale\": %g,\n\
        \  \"document_bytes\": %d,\n  \"queries\": [\n" scale bytes;
      List.iteri
        (fun i (name, t_off, t_on, n_on, elided, merges, root, parity) ->
           Printf.fprintf oc
             "    { \"query\": %S, \"no_order_props_ms\": %.3f, \
              \"order_props_ms\": %.3f, \"speedup\": %.3f, \"items\": %d, \
              \"sorts_elided\": %d, \"sorts_to_merges\": %d, \
              \"root_sort_elided\": %d, \"parity\": %b }%s\n"
             name (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) n_on
             elided merges root parity
             (if i < List.length rows - 1 then "," else ""))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" out_path)

(* ----------------------------------------------------------------- serve *)

(* The query server under concurrent load, measured from the client side
   of real loopback TCP connections. Two phases against one in-process
   server (workers=4, queue=4, per-client cap 2, 5s ceiling):

   - capacity: clients = workers, each issuing sequential request/response
     XMark Q1 queries — nothing should shed, and the p50/p99 are the
     baseline service latency;
   - overload: 3x the capacity clients (>= the issue's 2x bar): 4 "hog"
     clients pin every worker with 40 ms SLEEP holds while 8 query clients
     offer the same Q1 load. Demand exceeds workers + queue, so the
     admission queue must shed (counted both client- and server-side);
     what IS admitted must still finish inside the budget ceiling —
     that is the graceful-degradation claim, checked as
     p99_within_ceiling.

   Knobs: XRQ_SERVE_SCALE (default 0.02), XRQ_SERVE_REQS (requests per
   client, default 40), XRQ_SERVE_OUT (default BENCH_serve.json). *)
let serve_bench () =
  section "Serve — concurrent clients, load shedding, tail latency";
  let scale =
    try float_of_string (Sys.getenv "XRQ_SERVE_SCALE")
    with Not_found | Failure _ -> 0.02
  in
  let reqs =
    try int_of_string (Sys.getenv "XRQ_SERVE_REQS")
    with Not_found | Failure _ -> 40
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_SERVE_OUT") ~default:"BENCH_serve.json"
  in
  let workers = 4 and queue_capacity = 4 and client_cap = 2 in
  let ceiling_s = 5.0 in
  with_store scale (fun st bytes ->
      Printf.printf
        "auction.xml: %.2f MB serialized, %d nodes; workers=%d queue=%d \
         client_cap=%d ceiling=%.0fs\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st)
        workers queue_capacity client_cap ceiling_s;
      let ceiling =
        { Basis.Budget.unlimited with
          Basis.Budget.timeout_s = Some ceiling_s }
      in
      let cfg =
        Server.config ~port:0 ~ceiling ~workers
          ~queue_capacity ~client_cap ~debug:true
          ~stores:[ ("xmark", st) ] ()
      in
      let srv = Server.start cfg in
      let port = Server.port srv in
      let connect () =
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd Unix.(ADDR_INET (inet_addr_loopback, port));
        fd
      in
      let rpc ic oc line =
        output_string oc line;
        output_char oc '\n';
        flush oc;
        input_line ic
      in
      (* One client: [n] sequential request/response rounds of [line];
         returns (ok latencies in ms, shed count, other-error count). *)
      let client line n () =
        let fd = connect () in
        let ic = Unix.in_channel_of_descr fd
        and oc = Unix.out_channel_of_descr fd in
        let lats = ref [] and shed = ref 0 and errs = ref 0 in
        (try
           for _ = 1 to n do
             let t0 = Unix.gettimeofday () in
             let resp = rpc ic oc line in
             let dt = (Unix.gettimeofday () -. t0) *. 1000. in
             if String.length resp >= 2 && String.sub resp 0 2 = "OK" then
               lats := dt :: !lats
             else if String.starts_with ~prefix:"ERR resource" resp then
               incr shed
             else incr errs
           done
         with End_of_file | Sys_error _ -> incr errs);
        (try ignore (rpc ic oc "QUIT") with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (!lats, !shed, !errs)
      in
      let percentile sorted p =
        match Array.length sorted with
        | 0 -> 0.0
        | len -> sorted.(int_of_float (p /. 100. *. float_of_int (len - 1)))
      in
      (* the wire is line-delimited: fold the query onto one line *)
      let q1 =
        "Q "
        ^ String.concat " "
            (String.split_on_char '\n' Xmark.Xmark_queries.q1)
      in
      (* A phase: run the thunks concurrently, merge client-side tallies. *)
      let run_phase name thunks =
        let t0 = Unix.gettimeofday () in
        let results = ref [] and mu = Mutex.create () in
        let ths =
          List.map
            (fun f ->
               Thread.create
                 (fun () ->
                    let r = f () in
                    Mutex.lock mu;
                    results := r :: !results;
                    Mutex.unlock mu)
                 ())
            thunks
        in
        List.iter Thread.join ths;
        let wall = Unix.gettimeofday () -. t0 in
        let lats =
          List.concat_map (fun (l, _, _) -> l) !results
          |> Array.of_list
        in
        Array.sort compare lats;
        let ok = Array.length lats in
        let shed = List.fold_left (fun a (_, s, _) -> a + s) 0 !results in
        let errs = List.fold_left (fun a (_, _, e) -> a + e) 0 !results in
        let p50 = percentile lats 50. and p99 = percentile lats 99. in
        let within = p99 <= ceiling_s *. 1000. in
        Printf.printf
          "%-9s clients=%-2d ok=%-4d shed=%-4d errs=%-2d wall=%5.2fs \
           %7.1f req/s  p50=%6.2fms  p99=%6.2fms%s\n%!"
          name (List.length thunks) ok shed errs wall
          (float_of_int ok /. wall) p50 p99
          (if within then "" else "  !! p99 exceeds ceiling");
        (name, List.length thunks, ok, shed, errs, wall, p50, p99, within)
      in
      let capacity =
        run_phase "capacity"
          (List.init workers (fun _ -> client q1 reqs))
      in
      (* Hogs pin the workers with SLEEP holds so the query clients
         genuinely contend for the admission queue; a stopped flag ends
         them once the measured clients finish. *)
      let stop_hogs = Atomic.make false in
      let hog () =
        let fd = connect () in
        let ic = Unix.in_channel_of_descr fd
        and oc = Unix.out_channel_of_descr fd in
        let shed = ref 0 in
        (try
           while not (Atomic.get stop_hogs) do
             let resp = rpc ic oc "SLEEP 40" in
             if String.starts_with ~prefix:"ERR resource" resp then
               incr shed
           done
         with End_of_file | Sys_error _ -> ());
        (try ignore (rpc ic oc "QUIT") with _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ([], !shed, 0)
      in
      let overload_queriers = 2 * workers in
      let overload =
        let hog_threads =
          List.init workers (fun _ -> Thread.create hog ())
        in
        let r =
          run_phase "overload"
            (List.init overload_queriers (fun _ -> client q1 reqs))
        in
        Atomic.set stop_hogs true;
        List.iter Thread.join hog_threads;
        (* hogs are load generators, not measured clients; report the
           total offered concurrency instead *)
        let (n, c, ok, shed, errs, wall, p50, p99, within) = r in
        (n, c + workers, ok, shed, errs, wall, p50, p99, within)
      in
      let stats = Server.stats srv in
      Server.stop ~grace_s:5. srv;
      let stat k = try List.assoc k stats with Not_found -> "0" in
      Printf.printf
        "\nserver: admitted=%s completed=%s shed_full=%s shed_cap=%s \
         degradations=%s\n"
        (stat "admitted") (stat "completed") (stat "shed_full")
        (stat "shed_cap") (stat "degradations");
      let oc = open_out out_path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"serve\",\n  \"scale\": %g,\n\
        \  \"document_bytes\": %d,\n  \"workers\": %d,\n\
        \  \"queue_capacity\": %d,\n  \"client_cap\": %d,\n\
        \  \"ceiling_s\": %g,\n  \"requests_per_client\": %d,\n\
        \  \"phases\": [\n"
        scale bytes workers queue_capacity client_cap ceiling_s reqs;
      List.iteri
        (fun i (name, clients, ok, shed, errs, wall, p50, p99, within) ->
           Printf.fprintf oc
             "    { \"phase\": %S, \"clients\": %d, \"ok\": %d, \
              \"shed\": %d, \"errors\": %d, \"wall_s\": %.3f, \
              \"throughput_rps\": %.1f, \"p50_ms\": %.3f, \
              \"p99_ms\": %.3f, \"p99_within_ceiling\": %b }%s\n"
             name clients ok shed errs wall
             (float_of_int ok /. wall) p50 p99 within
             (if i = 0 then "," else ""))
        [ capacity; overload ];
      Printf.fprintf oc
        "  ],\n  \"server\": { \"admitted\": %s, \"completed\": %s, \
         \"shed_full\": %s, \"shed_cap\": %s, \"shed_draining\": %s, \
         \"degradations\": %s }\n}\n"
        (stat "admitted") (stat "completed") (stat "shed_full")
        (stat "shed_cap") (stat "shed_draining") (stat "degradations");
      close_out oc;
      Printf.printf "wrote %s\n" out_path)

(* --------------------------------------------------------------- storage *)

(* The encoded-store experiment: bytes/node of the packed columns vs the
   boxed reference build, ingest throughput monolithic vs chunked (64 KB
   reader windows), and snapshot save/load vs re-parsing the document —
   plus a whole-corpus packed-vs-boxed parity check at a small scale.
   Writes BENCH_storage.json (override XRQ_STORAGE_OUT; scales
   XRQ_STORAGE_SCALES, default "0.01,0.05"). *)
let storage_bench () =
  section "Storage — packed columns, chunked ingest, snapshot persistence";
  let scales =
    match Sys.getenv_opt "XRQ_STORAGE_SCALES" with
    | None -> [ 0.01; 0.05 ]
    | Some s -> List.map float_of_string (String.split_on_char ',' (String.trim s))
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_STORAGE_OUT")
      ~default:"BENCH_storage.json"
  in
  let parse_into st xml =
    ignore (Xmldb.Xml_parser.load_document st ~uri:"auction.xml" xml)
  in
  let parse_chunked st xml =
    let pos = ref 0 in
    let reader b ofs len =
      let n = min (min len 65536) (String.length xml - !pos) in
      Bytes.blit_string xml !pos b ofs n;
      pos := !pos + n;
      n
    in
    ignore
      (Xmldb.Xml_parser.load_reader ~window:65536 st ~uri:"auction.xml"
         reader)
  in
  (* best of two runs; each run parses into a throwaway store *)
  let best_time mk run =
    let one () =
      let st = mk () in
      let _, t = time (fun () -> run st) in
      t
    in
    let a = one () and b = one () in
    Float.min a b
  in
  let rows =
    List.map
      (fun scale ->
         let xml = Xmark.Xmark_gen.generate ~scale () in
         let doc_bytes = String.length xml in
         let mb = float_of_int doc_bytes /. 1e6 in
         let packed () = Xmldb.Doc_store.create ~packed:true () in
         let boxed () = Xmldb.Doc_store.create ~packed:false () in
         let t_mono = best_time packed (fun st -> parse_into st xml) in
         let t_chunk = best_time packed (fun st -> parse_chunked st xml) in
         (* one retained packed store for sizes, snapshots and parity *)
         let st = packed () in
         parse_into st xml;
         let nodes = Xmldb.Doc_store.total_nodes st in
         let p_bytes = Xmldb.Doc_store.encoded_bytes st in
         let stb = boxed () in
         parse_into stb xml;
         let b_bytes = Xmldb.Doc_store.encoded_bytes stb in
         let per n bytes = float_of_int bytes /. float_of_int n in
         (* chunked ingest must produce the byte-identical store *)
         let stc = packed () in
         parse_chunked stc xml;
         let chunk_identical =
           Xmldb.Doc_store.Snapshot.to_string st
           = Xmldb.Doc_store.Snapshot.to_string stc
         in
         let snap = Filename.temp_file "xrq-storage" ".xrqs" in
         let _, t_save = time (fun () -> Xmldb.Doc_store.Snapshot.save st snap) in
         let snap_bytes = (Unix.stat snap).Unix.st_size in
         let loaded = ref None in
         let t_load =
           let a = snd (time (fun () -> loaded := Some (Xmldb.Doc_store.Snapshot.load snap))) in
           let b = snd (time (fun () -> loaded := Some (Xmldb.Doc_store.Snapshot.load snap))) in
           Float.min a b
         in
         let load_nodes =
           match !loaded with
           | Some l -> Xmldb.Doc_store.total_nodes l
           | None -> -1
         in
         Sys.remove snap;
         Printf.printf
           "--- scale %g: %.2f MB, %d nodes ---\n\
           \  bytes/node        packed %6.2f   boxed %6.2f   ratio %.2fx\n\
           \  ingest            monolithic %7.1f ms (%.1f MB/s)   chunked-64K \
            %7.1f ms (%.1f MB/s)%s\n\
           \  snapshot          %d bytes   save %6.1f ms   load %6.1f ms   \
            load vs re-parse %.1fx%s\n%!"
           scale mb nodes (per nodes p_bytes) (per nodes b_bytes)
           (per nodes b_bytes /. per nodes p_bytes)
           (t_mono *. 1000.) (mb /. t_mono)
           (t_chunk *. 1000.) (mb /. t_chunk)
           (if chunk_identical then "" else "  !! chunked snapshot differs")
           snap_bytes (t_save *. 1000.) (t_load *. 1000.) (t_mono /. t_load)
           (if load_nodes = nodes then "" else "  !! node count mismatch after load");
         (scale, doc_bytes, nodes, per nodes p_bytes, per nodes b_bytes,
          t_mono, t_chunk, chunk_identical, snap_bytes, t_save, t_load,
          load_nodes = nodes))
      scales
  in
  (* whole-corpus parity packed vs boxed at a small fixed scale *)
  let parity_scale = 0.002 in
  let queries_dir =
    if Sys.file_exists "queries" then "queries" else "../queries"
  in
  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let corpus =
    Sys.readdir queries_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".xq")
    |> List.sort compare
    |> List.map (fun f ->
        (Filename.chop_suffix f ".xq",
         read_file (Filename.concat queries_dir f)))
  in
  let mk_parity_store packed =
    let st = Xmldb.Doc_store.create ~packed () in
    ignore (Xmark.Xmark_gen.load ~scale:parity_scale st);
    ignore
      (Xmldb.Xml_parser.load_document st ~uri:"t.xml"
         "<a><b><c/><d/></b><c/><e k=\"1\">x<f/>y</e></a>");
    st
  in
  let stp = mk_parity_store true and stb = mk_parity_store false in
  let mismatches =
    List.filter
      (fun (_, q) ->
         (Engine.run stp q).Engine.serialized
         <> (Engine.run stb q).Engine.serialized)
      corpus
  in
  let all_match = mismatches = [] in
  Printf.printf
    "\ncorpus parity packed vs boxed (scale %g, %d queries): %s\n"
    parity_scale (List.length corpus)
    (if all_match then "ok"
     else
       "MISMATCH on "
       ^ String.concat ", " (List.map fst mismatches));
  let oc = open_out out_path in
  Printf.fprintf oc
    "{\n  \"experiment\": \"storage\",\n  \"format_version\": %d,\n\
    \  \"scales\": [\n"
    Xmldb.Doc_store.Snapshot.format_version;
  List.iteri
    (fun i (scale, doc_bytes, nodes, ppn, bpn, t_mono, t_chunk, ident,
            snap_bytes, t_save, t_load, load_ok) ->
       let mb = float_of_int doc_bytes /. 1e6 in
       Printf.fprintf oc
         "    { \"scale\": %g, \"document_bytes\": %d, \"nodes\": %d, \
          \"packed_bytes_per_node\": %.3f, \"boxed_bytes_per_node\": %.3f, \
          \"compression_ratio\": %.3f, \"parse_ms\": %.3f, \
          \"parse_mb_s\": %.2f, \"chunked_parse_ms\": %.3f, \
          \"chunked_mb_s\": %.2f, \"chunk_snapshot_identical\": %b, \
          \"snapshot_bytes\": %d, \"save_ms\": %.3f, \"load_ms\": %.3f, \
          \"load_vs_reparse\": %.3f, \"load_node_parity\": %b }%s\n"
         scale doc_bytes nodes ppn bpn (bpn /. ppn) (t_mono *. 1000.)
         (mb /. t_mono) (t_chunk *. 1000.) (mb /. t_chunk) ident snap_bytes
         (t_save *. 1000.) (t_load *. 1000.) (t_mono /. t_load) load_ok
         (if i < List.length rows - 1 then "," else ""))
    rows;
  Printf.fprintf oc
    "  ],\n  \"corpus_parity\": { \"scale\": %g, \"queries\": %d, \
     \"all_match\": %b }\n}\n"
    parity_scale (List.length corpus) all_match;
  close_out oc;
  Printf.printf "wrote %s\n" out_path

(* ------------------------------------------------------------------ scan *)

(* Compressed execution on vs off: the same prepared physical plans run
   with code_eval enabled (batched staircase steps consuming the store's
   bulk range decoders; atomize/string carried as per-fragment dictionary
   codes; string-equality predicates translated once into a code and
   evaluated as int compares) and with --no-code-eval (the materialized
   reference path). Byte parity is asserted IN THE SAME RUN as the
   timings — a speedup that breaks parity is a bug, not a result. The
   query set splits into name-test-heavy descendant scans (Q6/Q7: the
   bulk-decode path) and equality-heavy value comparisons over generated
   attribute/text values (the code-predicate path; top_sellers probes the
   zipf-heavy seller attribute). Writes BENCH_scan.json (override
   XRQ_SCAN_OUT; scale XRQ_SCAN_SCALE, default 0.1). With
   XRQ_SCAN_REQUIRE set, exits 1 unless every query holds parity, some
   query fired code predicates and some query bulk-decoded rows — the CI
   smoke guard that the compressed paths are actually exercised. *)
let scan_bench () =
  section "Scan — compressed execution (code-eval + bulk scans) on vs off";
  let scale =
    try float_of_string (Sys.getenv "XRQ_SCAN_SCALE")
    with Not_found | Failure _ -> 0.1
  in
  let out_path =
    Option.value (Sys.getenv_opt "XRQ_SCAN_OUT") ~default:"BENCH_scan.json"
  in
  let off_opts = { Engine.default_opts with Engine.code_eval = false } in
  let top_sellers =
    {|let $auction := doc("auction.xml")
return count(for $t in $auction/site/closed_auctions/closed_auction
             where $t/seller/@person eq "person0"
             return $t)|}
  in
  let eq_education =
    {|let $auction := doc("auction.xml")
return count(for $e in $auction//profile/education
             where $e/text() eq "Graduate School"
             return $e)|}
  in
  let eq_business =
    {|let $auction := doc("auction.xml")
return count(for $b in $auction//profile/business
             where $b/text() eq "Yes"
             return $b)|}
  in
  let queries =
    [ ("Q6", q6);
      ("Q7", Xmark.Xmark_queries.get "Q7");
      ("Q11", Xmark.Xmark_queries.q11);
      ("top_sellers", top_sellers);
      ("eq_education", eq_education);
      ("eq_business", eq_business) ]
  in
  with_store scale (fun st bytes ->
      Printf.printf "auction.xml: %.2f MB serialized, %d nodes\n\n"
        (float_of_int bytes /. 1e6) (Xmldb.Doc_store.total_nodes st);
      Printf.printf "%-12s %12s %12s %9s %7s %7s %7s %7s %7s\n" "query"
        "off" "on" "speedup" "items" "parity" "cpreds" "bulk" "latemat";
      let rows =
        List.map
          (fun (name, q) ->
             let _, run_off = Engine.prepare ~opts:off_opts st q in
             let _, run_on = Engine.prepare ~opts:Engine.default_opts st q in
             let n_off, t_off = measure_exec run_off in
             let n_on, t_on = measure_exec run_on in
             (* byte parity, same store, same run *)
             let parity =
               n_off = n_on
               && (Engine.run ~opts:Engine.default_opts st q).Engine.serialized
                  = (Engine.run ~opts:off_opts st q).Engine.serialized
             in
             let cpreds, bulk, latemat =
               match
                 (Engine.run ~opts:Engine.default_opts ~with_profile:true st q)
                   .Engine.profile
               with
               | Some p ->
                 let ph = Algebra.Profile.phys p in
                 (ph.Algebra.Profile.code_preds,
                  ph.Algebra.Profile.bulk_decodes,
                  ph.Algebra.Profile.late_materializations)
               | None -> (0, 0, 0)
             in
             Printf.printf
               "%-12s %10.2fms %10.2fms %8.2fx %7d %7s %7d %7d %7d%s\n%!"
               name (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) n_on
               (if parity then "ok" else "FAIL") cpreds bulk latemat
               (if parity then "" else "  !! result mismatch");
             (name, t_off, t_on, n_on, parity, cpreds, bulk, latemat))
          queries
      in
      let fast =
        List.filter (fun (_, t_off, t_on, _, _, _, _, _) -> t_off /. t_on >= 1.3) rows
      in
      let total f = List.fold_left (fun a r -> a + f r) 0 rows in
      let total_cpreds = total (fun (_, _, _, _, _, c, _, _) -> c) in
      let total_bulk = total (fun (_, _, _, _, _, _, b, _) -> b) in
      let all_parity = List.for_all (fun (_, _, _, _, p, _, _, _) -> p) rows in
      Printf.printf
        "\n%d of %d queries at >= 1.3x; %d code predicates and %d \
         bulk-decoded rows fired across the set; parity %s.\n"
        (List.length fast) (List.length rows) total_cpreds total_bulk
        (if all_parity then "holds everywhere" else "VIOLATED");
      let oc = open_out out_path in
      Printf.fprintf oc
        "{\n  \"experiment\": \"scan\",\n  \"scale\": %g,\n\
        \  \"document_bytes\": %d,\n  \"queries\": [\n" scale bytes;
      List.iteri
        (fun i (name, t_off, t_on, n_on, parity, cpreds, bulk, latemat) ->
           Printf.fprintf oc
             "    { \"query\": %S, \"no_code_eval_ms\": %.3f, \
              \"code_eval_ms\": %.3f, \"speedup\": %.3f, \"items\": %d, \
              \"parity\": %b, \"code_preds\": %d, \"bulk_decodes\": %d, \
              \"late_materializations\": %d }%s\n"
             name (t_off *. 1000.) (t_on *. 1000.) (t_off /. t_on) n_on
             parity cpreds bulk latemat
             (if i < List.length rows - 1 then "," else ""))
        rows;
      Printf.fprintf oc "  ]\n}\n";
      close_out oc;
      Printf.printf "wrote %s\n" out_path;
      if Sys.getenv_opt "XRQ_SCAN_REQUIRE" <> None then begin
        if not all_parity then begin
          Printf.eprintf "scan guard: parity violated\n";
          exit 1
        end;
        if total_cpreds = 0 then begin
          Printf.eprintf "scan guard: no code predicates fired\n";
          exit 1
        end;
        if total_bulk = 0 then begin
          Printf.eprintf "scan guard: no rows bulk-decoded\n";
          exit 1
        end;
        Printf.printf
          "scan guard: parity ok, %d code predicates, %d bulk rows\n"
          total_cpreds total_bulk
      end)

(* ---------------------------------------------------------------- driver *)

let experiments =
  [ ("fig6", fig6); ("fig9", fig9); ("fig10", fig10); ("table2", table2);
    ("plansizes", plansizes); ("fig12", fig12); ("micro", micro);
    ("sharing", sharing); ("ablation", ablation); ("physical", physical);
    ("parallel", parallel_bench); ("rewrite", rewrite_bench);
    ("joingraph", joingraph_bench); ("order", order_bench);
    ("serve", serve_bench); ("storage", storage_bench);
    ("scan", scan_bench) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected = if args = [] then List.map fst experiments else args in
  List.iter
    (fun name ->
       match List.assoc_opt name experiments with
       | Some f -> f ()
       | None ->
         Printf.eprintf "unknown experiment %S; available: %s\n" name
           (String.concat ", " (List.map fst experiments));
         exit 1)
    selected
